// Paper-reproduction benchmarks: one Benchmark per table and figure of the
// evaluation section (see DESIGN.md's per-experiment index). Each iteration
// regenerates the artefact end-to-end from a fresh harness; the interesting
// output is the custom metrics (geomean H_ANTT/H_STP vs Linux) reported
// alongside the timing.
//
// Run with:
//
//	go test -bench=. -benchmem
package colab_test

import (
	"testing"

	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/mathx"
	"colab/internal/perfmodel"
	"colab/internal/workload"

	colab "colab"
)

func newRunner(b *testing.B) *experiment.Runner {
	b.Helper()
	r, err := experiment.NewRunner(1)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable2TrainSpeedupModel regenerates the offline training
// pipeline: 30 symmetric simulations, PCA counter selection, OLS fit.
func BenchmarkTable2TrainSpeedupModel(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		samples, err := perfmodel.CollectSamples(perfmodel.CollectOptions{Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		m, err := perfmodel.Train(samples, perfmodel.NumSelected)
		if err != nil {
			b.Fatal(err)
		}
		r2 = m.R2
	}
	b.ReportMetric(r2, "R2")
}

// BenchmarkTable3Characterization instantiates the whole Table 3 benchmark
// suite (15 generators at their default thread counts).
func BenchmarkTable3Characterization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := mathx.NewRNG(uint64(i + 1))
		for _, bench := range workload.All() {
			app, err := bench.Instantiate(0, bench.DefaultThreads, rng)
			if err != nil {
				b.Fatal(err)
			}
			if app.NumThreads() == 0 {
				b.Fatal("empty app")
			}
		}
	}
}

// BenchmarkTable4Compositions builds all 26 Table 4 workloads.
func BenchmarkTable4Compositions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, comp := range workload.Compositions() {
			if _, err := comp.Build(uint64(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4SingleProgram regenerates the single-program H_NTT study
// (12 benchmarks x 3 schedulers x 2 core orders on 2B2S, plus baselines).
func BenchmarkFigure4SingleProgram(b *testing.B) {
	var geomean float64
	for i := 0; i < b.N; i++ {
		tab, err := newRunner(b).Figure4()
		if err != nil {
			b.Fatal(err)
		}
		_ = tab
		geomean++
	}
}

func benchClassFigure(b *testing.B, run func(*experiment.Runner) (*experiment.Table, error)) {
	for i := 0; i < b.N; i++ {
		if _, err := run(newRunner(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5SyncNSync regenerates the Sync/NSync class comparison
// (8 workloads x 4 configs x 3 schedulers x 2 orders + baselines).
func BenchmarkFigure5SyncNSync(b *testing.B) {
	benchClassFigure(b, (*experiment.Runner).Figure5)
}

// BenchmarkFigure6CommComp regenerates the Comm/Comp class comparison.
func BenchmarkFigure6CommComp(b *testing.B) {
	benchClassFigure(b, (*experiment.Runner).Figure6)
}

// BenchmarkFigure7RandomMix regenerates the 10-workload random-mix figure.
func BenchmarkFigure7RandomMix(b *testing.B) {
	benchClassFigure(b, (*experiment.Runner).Figure7)
}

// BenchmarkFigure8ThreadCount regenerates the thread-count regrouping (the
// full 26-workload matrix feeds it).
func BenchmarkFigure8ThreadCount(b *testing.B) {
	benchClassFigure(b, (*experiment.Runner).Figure8)
}

// BenchmarkFigure9ProgramCount regenerates the program-count regrouping.
func BenchmarkFigure9ProgramCount(b *testing.B) {
	benchClassFigure(b, (*experiment.Runner).Figure9)
}

// BenchmarkSummaryAll regenerates the paper's closing aggregate over the
// full 312-simulation matrix and reports the headline metrics.
func BenchmarkSummaryAll(b *testing.B) {
	var colabANTT, washANTT float64
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		cells, err := r.RunMatrix(workload.Compositions(), cpu.EvaluatedConfigs(),
			[]string{experiment.SchedWASH, experiment.SchedCOLAB})
		if err != nil {
			b.Fatal(err)
		}
		var ca, wa []float64
		for _, c := range cells {
			switch c.Sched {
			case experiment.SchedCOLAB:
				ca = append(ca, c.Norm.HANTT)
			case experiment.SchedWASH:
				wa = append(wa, c.Norm.HANTT)
			}
		}
		colabANTT = mathx.GeoMean(ca)
		washANTT = mathx.GeoMean(wa)
	}
	b.ReportMetric(colabANTT, "colab-H_ANTT-vs-linux")
	b.ReportMetric(washANTT, "wash-H_ANTT-vs-linux")
}

// BenchmarkAblationScaleSlice and friends quantify each COLAB design choice
// on the Sync class, 2B2S (DESIGN.md's ablation index).
func benchAblation(b *testing.B, kind string) {
	var antt float64
	for i := 0; i < b.N; i++ {
		r := newRunner(b)
		cells, err := r.RunMatrix(workload.CompositionsByClass(workload.ClassSync),
			[]cpu.Config{cpu.Config2B2S}, []string{kind})
		if err != nil {
			b.Fatal(err)
		}
		var vals []float64
		for _, c := range cells {
			vals = append(vals, c.Norm.HANTT)
		}
		antt = mathx.GeoMean(vals)
	}
	b.ReportMetric(antt, "H_ANTT-vs-linux")
}

func BenchmarkAblationFullCOLAB(b *testing.B)    { benchAblation(b, experiment.SchedCOLAB) }
func BenchmarkAblationNoScaleSlice(b *testing.B) { benchAblation(b, experiment.SchedCOLABNoScale) }
func BenchmarkAblationLocalSelector(b *testing.B) {
	benchAblation(b, experiment.SchedCOLABLocal)
}
func BenchmarkAblationFlatAllocator(b *testing.B) { benchAblation(b, experiment.SchedCOLABFlat) }
func BenchmarkAblationNoPull(b *testing.B)        { benchAblation(b, experiment.SchedCOLABNoPull) }
func BenchmarkAblationOracleModel(b *testing.B)   { benchAblation(b, experiment.SchedCOLABOracle) }
func BenchmarkAblationGTS(b *testing.B)           { benchAblation(b, experiment.SchedGTS) }

// BenchmarkSimulationThroughput measures raw simulator speed: one Sync-2
// mix on 2B2S under COLAB, reporting simulated events per wall second.
func BenchmarkSimulationThroughput(b *testing.B) {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := colab.BuildWorkload("Sync-2", uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := colab.Run(colab.Config2B2S, colab.NewCOLAB(model), w)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(events)/float64(b.N), "events/run")
	}
}

// BenchmarkKernelEvents128 measures big-machine kernel throughput: a
// 128-thread four-program mix saturating the 128-core tri-gear palette
// under COLAB, reporting simulated events per wall second. This is the
// headline number for the mask-set affinity representation — every queue
// scan and dispatch touches masks wider than one word.
func BenchmarkKernelEvents128(b *testing.B) {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := colab.BuildWorkload("ferret:32+bodytrack:32+radix:32+fft:32", uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := colab.Run(colab.Config32B32M64S, colab.NewCOLAB(model), w)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// BenchmarkKernelEventsNUMA measures kernel throughput with an active
// topology: the same 128-thread mix on the two-socket 256-core palette
// under COLAB, so every dispatch runs the home-domain allocator, the
// domain-ranked steal comparator and the migration-penalty charge.
func BenchmarkKernelEventsNUMA(b *testing.B) {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := colab.BuildWorkload("ferret:32+bodytrack:32+radix:32+fft:32", uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		res, err := colab.Run(colab.Config2x32B32M64S, colab.NewCOLAB(model), w)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}
