// Opensystem: models a server-style open system — short search queries
// (ferret) arriving as a Poisson stream over a long-running background
// batch job — and scores it against the closed-system variant where
// everything starts at t=0, the only shape the paper evaluates.
//
// It shows the three layers of the scenario API working together:
//
//  1. the scenario grammar with arrival processes
//     ("ferret:2@arrive=poisson(30ms)"),
//  2. RegisterScenario making the mix addressable by name in an
//     Experiment session exactly like a Table 4 index,
//  3. open-system scoring: each app's H_ANTT slowdown is measured from
//     its own arrival, so staggered admissions relieve contention
//     instead of padding every turnaround.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"colab"
)

func main() {
	// The server mix: three query apps drawn from one Poisson process with
	// a 30ms mean gap (the "*3" replication is what turns the process into
	// a stream), and the background batch job running from t=0. The closed
	// variant is the same mix with the arrival process stripped.
	colab.MustRegisterScenario("server-open",
		"lu_cb:4+ferret:2*3@arrive=poisson(30ms)")
	colab.MustRegisterScenario("server-closed",
		"lu_cb:4+ferret:2*3")

	spec, err := colab.ParseScenario("server-open")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server-open parses to %q (open=%v, %d apps)\n\n",
		spec.Canonical(), spec.Open(), spec.NumApps())

	// One session sweeps both scenarios under the Linux baseline and
	// COLAB; registered names work exactly like Table 4 indexes.
	exp := colab.NewExperiment(
		colab.WithWorkloads("server-open", "server-closed"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("linux", "colab"),
	)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("auto-baselined scores (H_ANTT lower/H_STP higher is better):")
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// The open system is the gentler one: queries that arrive later do not
	// contend with the batch job's cold start, so the average slowdown
	// (measured from each app's own arrival) drops.
	score := func(wl, policy string) colab.MixScore {
		for _, c := range res.Cells {
			if c.Run.Workload == wl && c.Run.Policy == policy {
				return c.Score
			}
		}
		log.Fatalf("missing cell %s/%s", wl, policy)
		return colab.MixScore{}
	}
	open, closed := score("server-open", "colab"), score("server-closed", "colab")
	fmt.Printf("\ncolab H_ANTT: closed %.3f -> open %.3f (poisson arrivals relieve contention)\n",
		closed.HANTT, open.HANTT)

	// A single traced run shows the timestamped admissions themselves.
	w, err := colab.BuildWorkload("server-open", 1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadmission events of one run:")
	result, err := colab.RunTraced(colab.Config2B2S, colab.NewCOLAB(model), w, func(e colab.TraceEvent) {
		if e.Kind == "admit" {
			fmt.Printf("  %v admit %s\n", e.At, e.Thread)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-app timing (turnaround measured from arrival):")
	result.WriteSummary(os.Stdout)
}
