// Motivating: the paper's Figure 1 example, executed. One big core, one
// little core, three applications:
//
//   - alpha: two threads; a1 is core-sensitive and blocks a2
//   - beta:  two threads; b1 is core-insensitive and blocks b2
//   - gamma: one core-sensitive thread
//
// An affinity-only multi-factor heuristic (WASH) is inclined to pile the
// high-speedup thread and both blockers onto the big core; the coordinated
// scheduler (COLAB) keeps a1 and gamma on the big core while the little
// core runs b1 immediately. The example runs the scenario under all three
// schedulers and prints makespans and where each bottleneck thread ran.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colab"
)

var (
	sensitive   = colab.WorkProfile{ILP: 0.9, BranchRate: 0.12, MemIntensity: 0.05, FPRate: 0.6}
	insensitive = colab.WorkProfile{ILP: 0.1, BranchRate: 0.05, MemIntensity: 0.9}
)

// blockerProgram holds a lock while computing, making the other thread of
// its app wait (the a1/b1 pattern of Figure 1).
func blockerProgram(iters int, cs float64) colab.Program {
	var p colab.Program
	for i := 0; i < iters; i++ {
		p = append(p,
			colab.Lock{ID: 1},
			colab.Compute{Work: cs},
			colab.Unlock{ID: 1},
			colab.Compute{Work: 0.2e6},
		)
	}
	return p
}

// blockedProgram contends for the same lock (the a2/b2 pattern).
func blockedProgram(iters int) colab.Program {
	var p colab.Program
	for i := 0; i < iters; i++ {
		p = append(p,
			colab.Compute{Work: 0.2e6},
			colab.Lock{ID: 1},
			colab.Compute{Work: 0.1e6},
			colab.Unlock{ID: 1},
			colab.Compute{Work: 1e6},
		)
	}
	return p
}

func twoThreadApp(id int, name string, blockerProf colab.WorkProfile) *colab.App {
	app := &colab.App{ID: id, Name: name}
	t1 := &colab.Thread{App: app, Name: name + "1", Profile: blockerProf, Program: blockerProgram(40, 3e6)}
	t2 := &colab.Thread{App: app, Name: name + "2", Profile: insensitive, Program: blockedProgram(40)}
	app.Threads = []*colab.Thread{t1, t2}
	return app
}

func build() *colab.Workload {
	alpha := twoThreadApp(0, "alpha", sensitive) // a1: high speedup + blocker
	beta := twoThreadApp(1, "beta", insensitive) // b1: low speedup + blocker
	gamma := &colab.App{ID: 2, Name: "gamma"}    // single high-speedup thread
	g := &colab.Thread{App: gamma, Name: "g", Profile: sensitive,
		Program: colab.Program{colab.Compute{Work: 240e6}}}
	gamma.Threads = []*colab.Thread{g}
	return &colab.Workload{Name: "figure1", Apps: []*colab.App{alpha, beta, gamma}}
}

func main() {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	cfg := colab.NewConfig(1, 1, true) // Pb + Pl, as in Figure 1

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tmakespan\talpha\tbeta\tgamma\ta1 big-share\tb1 big-share")
	for _, s := range []struct {
		name string
		mk   func() colab.Scheduler
	}{
		{"linux", colab.NewLinux},
		{"wash", func() colab.Scheduler { return colab.NewWASH(model) }},
		{"colab", func() colab.Scheduler { return colab.NewCOLAB(model) }},
	} {
		res, err := colab.Run(cfg, s.mk(), build())
		if err != nil {
			log.Fatal(err)
		}
		at, _ := res.AppTurnaround("alpha")
		bt, _ := res.AppTurnaround("beta")
		gt, _ := res.AppTurnaround("gamma")
		share := func(name string) string {
			for _, th := range res.Threads {
				if th.Name == name && th.SumExec > 0 {
					return fmt.Sprintf("%.0f%%", float64(th.SumExecBig)/float64(th.SumExec)*100)
				}
			}
			return "-"
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\t%s\t%s\n",
			s.name, res.Makespan(), at, bt, gt, share("alpha1"), share("beta1"))
	}
	tw.Flush()
	fmt.Println("\nThe coordinated policy should keep the core-sensitive blocker (a1)")
	fmt.Println("on the big core while the insensitive blocker (b1) is serviced")
	fmt.Println("promptly on the little core — Figure 1's 'detailed guidelines'.")
}
