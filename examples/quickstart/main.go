// Quickstart: one Experiment session runs Table 4's Sync-2 mix (dedup +
// fluidanimate, 18 threads) on a 2-big-2-little machine under all three
// paper schedulers — baselines are collected and cached automatically, and
// the H_ANTT / H_STP scores come back in one call.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"colab"
)

func main() {
	exp := colab.NewExperiment(
		colab.WithWorkloads("Sync-2"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("linux", "wash", "colab"),
	)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("raw scores (baseline: each app alone on an all-big machine):")
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Normalise to Linux CFS to read the paper's headline directly:
	// H_ANTT < 1 and H_STP > 1 mean better than Linux.
	norm, err := res.Normalized("linux")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnormalised to linux:")
	if err := norm.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nCOLAB should beat Linux CFS on both metrics, with WASH in")
	fmt.Println("between — the paper's headline behaviour.")
}
