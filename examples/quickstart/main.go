// Quickstart: train the speedup model, run one multi-programmed workload
// (Table 4's Sync-2: dedup + fluidanimate, 18 threads) on a 2-big-2-little
// machine under all three paper schedulers, and compare turnaround times.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colab"
)

func main() {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("speedup model trained: R2 =", fmt.Sprintf("%.3f", model.R2))

	schedulers := []struct {
		name string
		mk   func() colab.Scheduler
	}{
		{"linux", colab.NewLinux},
		{"wash", func() colab.Scheduler { return colab.NewWASH(model) }},
		{"colab", func() colab.Scheduler { return colab.NewCOLAB(model) }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheduler\tdedup\tfluidanimate\tmakespan")
	for _, s := range schedulers {
		// Workloads are single-use: rebuild per run with the same seed so
		// every scheduler sees identical threads.
		w, err := colab.BuildWorkload("Sync-2", 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := colab.Run(colab.Config2B2S, s.mk(), w)
		if err != nil {
			log.Fatal(err)
		}
		dedup, _ := res.AppTurnaround("dedup")
		fluid, _ := res.AppTurnaround("fluidanimate")
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\n", s.name, dedup, fluid, res.Makespan())
	}
	tw.Flush()
	fmt.Println("\nCOLAB should finish both applications ahead of Linux CFS,")
	fmt.Println("with WASH in between — the paper's headline behaviour.")
}
