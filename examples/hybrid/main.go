// Hybrid: composes cross-policy scheduler pipelines through the stage
// grammar and a hand-built custom stage. COLAB's multi-factor labeler is
// first paired with WASH's (CFS) selector — expressing exactly the
// cross-design question the paper's ablation argues about: how much of
// COLAB's win survives when only the labeler cooperates and selection
// stays Linux? — and then with a user-defined selector registered into the
// same namespace.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"colab"
)

// longestQueueSelector is a deliberately simple custom selector stage:
// FIFO from the local shared run queue, else steal the head of the longest
// other queue. It shows the Selector surface; the CFS and COLAB selectors
// are the serious implementations.
type longestQueueSelector struct {
	pc *colab.PipelineContext
}

func (s *longestQueueSelector) Name() string                    { return "longestq.selector" }
func (s *longestQueueSelector) Start(pc *colab.PipelineContext) { s.pc = pc }
func (s *longestQueueSelector) PickNext(c *colab.Core) *colab.Thread {
	q := s.pc.Queues()
	pop := func(core int) *colab.Thread {
		var first *colab.Thread
		q.Each(core, func(t *colab.Thread) {
			if first == nil && t.AllowedOn(c.ID) {
				first = t
			}
		})
		if first != nil {
			q.Remove(first)
		}
		return first
	}
	if t := pop(c.ID); t != nil {
		return t
	}
	longest := -1
	for i := 0; i < q.NumQueues(); i++ {
		if i != c.ID && q.Len(i) > 0 && (longest < 0 || q.Len(i) > q.Len(longest)) {
			longest = i
		}
	}
	if longest < 0 {
		return nil
	}
	return pop(longest)
}
func (s *longestQueueSelector) TimeSlice(c *colab.Core, t *colab.Thread) colab.Time {
	return 2 * colab.Millisecond
}
func (s *longestQueueSelector) VRuntimeScale(c *colab.Core, t *colab.Thread) float64 { return 1 }
func (s *longestQueueSelector) WakeupPreempt(c *colab.Core, t *colab.Thread) bool    { return false }

func main() {
	// A custom stage registers once and becomes addressable in the grammar
	// next to the built-in stages.
	colab.MustRegisterStage(colab.SlotSelector, "longestq",
		func(colab.PolicyContext) (colab.PipelineStage, error) {
			return &longestQueueSelector{}, nil
		})

	for _, slot := range colab.StageSlots() {
		fmt.Printf("%-10s %v\n", slot, colab.StageNames(slot))
	}
	fmt.Println()

	res, err := colab.NewExperiment(
		colab.WithWorkloads("Sync-2"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies(
			"linux",
			"wash",
			"colab",
			// COLAB's labeler + allocator feeding WASH's (CFS) selector: the
			// coordinated selection is removed, everything else kept.
			"colab.labeler+colab.allocator+wash.selector",
			// The custom selector under the full COLAB front end.
			"colab.labeler+colab.allocator+longestq.selector",
		),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	norm, err := res.Normalized("linux")
	if err != nil {
		log.Fatal(err)
	}
	if err := norm.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nscores are normalised to Linux (H_ANTT < 1 is better). Swapping")
	fmt.Println("a single stage moves the scores materially in either direction —")
	fmt.Println("replacing COLAB's criticality-ranked selector with the CFS one")
	fmt.Println("gives back most of COLAB's edge on this sync-heavy mix. One cell")
	fmt.Println("proves nothing beyond the point: stage combinations are real,")
	fmt.Println("runnable experiments; colab-bench -ablation sweeps them properly.")
}
