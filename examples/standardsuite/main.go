// Standardsuite: runs the registered standard scenario suite —
// datacenter-day, interactive-burst, batch-backfill, memory-churn — and
// regenerates the per-class table its @class= labels define.
//
// The suite shows the load-generator layer end to end:
//
//  1. named, seed-pinned scenarios resolvable everywhere workloads are
//     named (here: an Experiment session, by name alone),
//  2. the @load= transformers — a diurnal rate envelope, a square-wave
//     burst envelope, and open-loop admission at a target utilisation
//     derived from the machine's aggregate capacity,
//  3. experiment.ClassTable regrouping: scores geomeaned per @class=
//     label, normalised to Linux, Figure 8-style.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"colab"
)

func main() {
	// The suite is pre-registered: list it and run it by name.
	fmt.Println("standard suite:")
	var names []string
	for _, s := range colab.StandardSuite() {
		fmt.Printf("  %-18s class=%-12s %s\n", s.Name, s.Class, s.Description)
		names = append(names, s.Name)
	}

	exp := colab.NewExperiment(
		colab.WithWorkloads(names...),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("linux", "colab"),
	)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nauto-baselined scores (H_ANTT lower/H_STP higher is better):")
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// load=util derives its arrival rate from the target machine, so
	// building the workload standalone takes the machine too.
	w, err := colab.BuildWorkloadOn("batch-backfill", 1, colab.Config2B2S)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbatch-backfill admissions at 60% target utilisation of 2B2S:")
	for _, app := range w.Apps {
		fmt.Printf("  %-8s arrives %v\n", app.Name, app.Arrival)
	}
}
