// Tri-gear DVFS walkthrough: run one multi-programmed workload on the
// 2B2M2S big.MEDIUM.LITTLE machine three ways — fixed-frequency COLAB with
// interpolated middle-tier predictions (the PR-1 state), COLAB with
// per-tier trained speedup models, and COLAB with both the tiered model and
// its native label-driven DVFS governor — and compare turnaround, energy,
// energy-delay product and frequency residency.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colab"
)

func main() {
	// The big-anchor model (Table 2) and the per-tier tri-gear models.
	// Both train from symmetric counter runs and are cached process-wide.
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	tiered, err := colab.TrainTriGearSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	for k := 1; k < tiered.NumTiers(); k++ {
		m := tiered.Models[k]
		fmt.Printf("tier %-6s model: R2=%.3f over %d samples\n", tiered.Tiers[k].Name, m.R2, m.Samples)
	}

	variants := []struct {
		name string
		mk   func() colab.Scheduler
	}{
		// Fixed frequency, middle tiers interpolated from the big anchor.
		{"colab (interp, fixed-freq)", func() colab.Scheduler { return colab.NewCOLAB(model) }},
		// Per-tier trained predictions, still fixed frequency.
		{"colab (tiered, fixed-freq)", func() colab.Scheduler {
			o := colab.COLABOptions{Speedup: model.ThreadPredictor(), TierSpeedup: tiered.TierPredictor()}
			return colab.NewCOLABWithOptions(o)
		}},
		// Per-tier predictions + the native label-driven governor.
		{"colab-dvfs (tiered+governor)", func() colab.Scheduler { return colab.NewCOLABDVFS(model, tiered) }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\nvariant\tmakespan\tenergy\tEDP\tf@nom")
	for _, v := range variants {
		// Workloads are single-use: rebuild per run with the same seed so
		// every variant sees identical threads.
		w, err := colab.BuildWorkload("Rand-7", 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := colab.Run(colab.Config2B2M2S, v.mk(), w)
		if err != nil {
			log.Fatal(err)
		}
		// Frequency residency: share of busy time at each core's nominal
		// (top) operating point. 1.00 means the ladders went unused.
		var busy, nom colab.Time
		for _, c := range res.Cores {
			for i, b := range c.BusyByOPP {
				busy += b
				if i == len(c.BusyByOPP)-1 {
					nom += b
				}
			}
		}
		fmt.Fprintf(tw, "%s\t%v\t%.3f J\t%.4f Js\t%.2f\n",
			v.name, res.Makespan(), res.TotalEnergyJ(), res.EnergyDelayProduct(), float64(nom)/float64(busy))
	}
	tw.Flush()
	fmt.Println("\nThe governor trades a little turnaround for a larger energy cut:")
	fmt.Println("its energy-delay product lands below the fixed-frequency runs while")
	fmt.Println("f@nom < 1 shows the label-driven operating-point decisions at work.")
}
