// NUMA topology walkthrough: run the suite's memory-bound scenario on the
// two-socket 2x2B2S palette under Linux, topology-aware WASH and COLAB,
// and sweep the per-hop migration penalty to see what locality-aware
// placement buys back.
//
// The palette carries an explicit topology — two sockets, one LLC domain
// each, a cold-cache penalty per cross-domain migration — so the kernel
// places each app in a home domain at admission, the COLAB allocator
// round-robins inside that domain's tier slices, CFS idle-balance steals
// nearest-domain-first, and WASH runs its tier-ranked topology arm. With
// the penalty at zero the topology deactivates and the run is
// bit-identical to the flat machine.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colab"
)

func main() {
	cfg := colab.Config2x2B2S
	for _, line := range cfg.DescribeTopology() {
		fmt.Println(line)
	}

	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	policies := []struct {
		name string
		mk   func() colab.Scheduler
	}{
		{"linux", colab.NewLinux},
		{"wash", func() colab.Scheduler { return colab.NewWASH(model) }},
		{"colab", func() colab.Scheduler { return colab.NewCOLAB(model) }},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\ncost(cyc/hop)\tpolicy\tmakespan\tmigrations\tcross-domain hops")
	for _, cost := range []float64{0, colab.DefaultMigrationPenaltyCycles, 4 * colab.DefaultMigrationPenaltyCycles} {
		machine := cfg.WithMigrationCost(cost)
		for _, p := range policies {
			// Workloads are single-use: rebuild per run with the same seed
			// so every cell sees identical threads. memory-churn's util
			// load derives admissions from the machine's capacity, so the
			// build takes the config.
			w, err := colab.BuildWorkloadOn("memory-churn", 1, machine)
			if err != nil {
				log.Fatal(err)
			}
			res, err := colab.Run(machine, p.mk(), w)
			if err != nil {
				log.Fatal(err)
			}
			hops := 0
			for _, th := range res.Threads {
				hops += th.CrossDomainHops
			}
			fmt.Fprintf(tw, "%g\t%s\t%v\t%d\t%d\n",
				cost, p.name, res.Makespan(), res.TotalMigrations, hops)
		}
	}
	tw.Flush()
	fmt.Println("\ncost 0 deactivates the topology: those rows are bit-identical to the flat machine.")
}
