// Custompolicy: registers a user-defined scheduling policy in the
// process-wide registry and compares it against CFS and COLAB through an
// Experiment session. The policy here is deliberately naive — FIFO run
// queues with round-robin placement and no asymmetry awareness — to show
// how much the policy layer matters on a synchronisation-heavy mix.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"colab"
)

// fifoPolicy implements colab.Scheduler: round-robin placement, per-core
// FIFO queues, fixed 2 ms slices, no preemption, no stealing.
type fifoPolicy struct {
	m    *colab.Machine
	rqs  [][]*colab.Thread
	next int
}

func (p *fifoPolicy) Name() string { return "fifo" }

func (p *fifoPolicy) Start(m *colab.Machine) {
	p.m = m
	p.rqs = make([][]*colab.Thread, len(m.Cores()))
	p.next = 0
}

func (p *fifoPolicy) Admit(t *colab.Thread) {}

func (p *fifoPolicy) Enqueue(t *colab.Thread, wakeup bool) int {
	core := p.next % len(p.rqs)
	p.next++
	p.rqs[core] = append(p.rqs[core], t)
	return core
}

func (p *fifoPolicy) PickNext(c *colab.Core) *colab.Thread {
	q := p.rqs[c.ID]
	if len(q) == 0 {
		// Minimal work conservation: take from the longest other queue.
		longest := -1
		for i, o := range p.rqs {
			if len(o) > 0 && (longest < 0 || len(o) > len(p.rqs[longest])) {
				longest = i
			}
		}
		if longest < 0 {
			return nil
		}
		q = p.rqs[longest]
		t := q[0]
		p.rqs[longest] = q[1:]
		return t
	}
	t := q[0]
	p.rqs[c.ID] = q[1:]
	return t
}

func (p *fifoPolicy) TimeSlice(c *colab.Core, t *colab.Thread) colab.Time {
	return 2 * colab.Millisecond
}

func (p *fifoPolicy) VRuntimeScale(c *colab.Core, t *colab.Thread) float64 { return 1 }

func (p *fifoPolicy) WakeupPreempt(c *colab.Core, t *colab.Thread) bool { return false }

func (p *fifoPolicy) ThreadDone(t *colab.Thread) {}

func main() {
	// Register once; the name then works everywhere policies are named:
	// Experiment sessions, colab.NewPolicy, colab-sim -sched fifo, ...
	colab.MustRegisterPolicy("fifo", func(colab.PolicyContext) (colab.Scheduler, error) {
		return &fifoPolicy{}, nil
	})

	res, err := colab.NewExperiment(
		colab.WithWorkloads("Sync-3"),
		colab.WithMachine(colab.Config2B4S),
		colab.WithPolicies("fifo", "linux", "colab"),
		colab.WithSeeds(5),
	).Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe naive FIFO policy lands near Linux CFS while COLAB pulls")
	fmt.Println("clearly ahead: asymmetry awareness, not queueing discipline,")
	fmt.Println("drives the scores")
}
