// Custompolicy: drops a user-defined scheduling policy into the simulated
// kernel through the public API. The policy here is deliberately naive —
// FIFO run queues with round-robin placement and no asymmetry awareness —
// and the example compares it against CFS and COLAB on a
// synchronisation-heavy mix to show how much the policy layer matters.
package main

import (
	"fmt"
	"log"

	"colab"
)

// fifoPolicy implements colab.Scheduler: round-robin placement, per-core
// FIFO queues, fixed 2 ms slices, no preemption, no stealing.
type fifoPolicy struct {
	m    *colab.Machine
	rqs  [][]*colab.Thread
	next int
}

func (p *fifoPolicy) Name() string { return "fifo" }

func (p *fifoPolicy) Start(m *colab.Machine) {
	p.m = m
	p.rqs = make([][]*colab.Thread, len(m.Cores()))
	p.next = 0
}

func (p *fifoPolicy) Admit(t *colab.Thread) {}

func (p *fifoPolicy) Enqueue(t *colab.Thread, wakeup bool) int {
	core := p.next % len(p.rqs)
	p.next++
	p.rqs[core] = append(p.rqs[core], t)
	return core
}

func (p *fifoPolicy) PickNext(c *colab.Core) *colab.Thread {
	q := p.rqs[c.ID]
	if len(q) == 0 {
		// Minimal work conservation: take from the longest other queue.
		longest := -1
		for i, o := range p.rqs {
			if len(o) > 0 && (longest < 0 || len(o) > len(p.rqs[longest])) {
				longest = i
			}
		}
		if longest < 0 {
			return nil
		}
		q = p.rqs[longest]
		t := q[0]
		p.rqs[longest] = q[1:]
		return t
	}
	t := q[0]
	p.rqs[c.ID] = q[1:]
	return t
}

func (p *fifoPolicy) TimeSlice(c *colab.Core, t *colab.Thread) colab.Time {
	return 2 * colab.Millisecond
}

func (p *fifoPolicy) VRuntimeScale(c *colab.Core, t *colab.Thread) float64 { return 1 }

func (p *fifoPolicy) WakeupPreempt(c *colab.Core, t *colab.Thread) bool { return false }

func (p *fifoPolicy) ThreadDone(t *colab.Thread) {}

func main() {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []struct {
		name string
		mk   func() colab.Scheduler
	}{
		{"fifo (custom)", func() colab.Scheduler { return &fifoPolicy{} }},
		{"linux", colab.NewLinux},
		{"colab", func() colab.Scheduler { return colab.NewCOLAB(model) }},
	} {
		w, err := colab.BuildWorkload("Sync-3", 5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := colab.Run(colab.Config2B4S, s.mk(), w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s makespan %v, migrations %d, preemptions %d\n",
			s.name, res.Makespan(), res.TotalMigrations, res.TotalPreemptions)
	}
}
