// Pipeline: the paper's motivating scenario in isolation. ferret is a
// six-stage pipeline whose rank stage dominates per-item cost; the rank
// threads are the bottleneck the futex blame detector must find and the
// big cores must accelerate.
//
// The example runs ferret alone on 2B2S under Linux and COLAB, then prints
// each thread's accumulated blocking blame and big-core share so you can
// see the coordination happen: under COLAB the high-blame rank stage gets
// most of its cycles on big cores.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"colab"
)

func run(name string, s colab.Scheduler) *colab.Result {
	w, err := colab.BuildBenchmark("ferret", 6, 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := colab.Run(colab.Config2B2S, s, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s turnaround: %v\n", name, res.Apps[0].Turnaround)
	return res
}

func main() {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	linux := run("linux", colab.NewLinux())
	cb := run("colab", colab.NewCOLAB(model))

	fmt.Println("\nper-thread blame and big-core share under COLAB:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "thread\ttrue-speedup\tblock-blame\tbig-core share\texec")
	rows := cb.Threads
	sort.Slice(rows, func(i, j int) bool { return rows[i].BlockBlame > rows[j].BlockBlame })
	for _, t := range rows {
		share := 0.0
		if t.SumExec > 0 {
			share = float64(t.SumExecBig) / float64(t.SumExec) * 100
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%v\t%.0f%%\t%v\n", t.Name, t.TrueSpeedup, t.BlockBlame, share, t.SumExec)
	}
	tw.Flush()

	speedup := float64(linux.Apps[0].Turnaround) / float64(cb.Apps[0].Turnaround)
	fmt.Printf("\nCOLAB vs Linux on ferret: %.2fx faster turnaround\n", speedup)
}
