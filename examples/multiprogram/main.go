// Multiprogram: one Experiment session sweeps a random-mixed workload
// across every evaluated machine shape and the three paper schedulers —
// the session's worker pool parallelises the 12 cells, big-only baselines
// are collected behind the scenes, and results come back in deterministic
// order regardless of the worker count.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"colab"
)

const workloadIndex = "Rand-7" // fmm + water_spatial + ferret + swaptions

func main() {
	exp := colab.NewExperiment(
		colab.WithWorkloads(workloadIndex),
		colab.WithMachines(colab.EvaluatedConfigs()...),
		colab.WithPolicies(colab.PaperPolicies()...),
		colab.WithSeeds(3),
		colab.WithWorkers(4),
	)
	res, err := exp.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	if err := res.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload %s: H_ANTT lower is better, H_STP higher is better\n", workloadIndex)
	fmt.Println("(each cell averages the big-first and little-first core orders;")
	fmt.Println("baselines are the per-app big-only-alone turnarounds of §5.1)")
}
