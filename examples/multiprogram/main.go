// Multiprogram: computes the paper's actual metrics (H_ANTT, H_STP) for a
// random-mixed workload on every evaluated machine shape, showing how to
// build big-only baselines and score a mix with the public API.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"colab"
)

const workloadIndex = "Rand-7" // fmm + water_spatial + ferret + swaptions
const seed = 3

// baselineTurnarounds measures each app of the composition alone on an
// all-big machine of the same size — the H_* baseline of §5.1.
func baselineTurnarounds(nCores int) []colab.Time {
	w, err := colab.BuildWorkload(workloadIndex, seed)
	if err != nil {
		log.Fatal(err)
	}
	bases := make([]colab.Time, len(w.Apps))
	for i := range w.Apps {
		// Rebuild so every app is fresh, then isolate app i.
		wi, err := colab.BuildWorkload(workloadIndex, seed)
		if err != nil {
			log.Fatal(err)
		}
		alone := &colab.Workload{Name: wi.Apps[i].Name, Apps: []*colab.App{wi.Apps[i]}}
		res, err := colab.Run(colab.NewConfig(nCores, 0, true), colab.NewLinux(), alone)
		if err != nil {
			log.Fatal(err)
		}
		bases[i] = res.Apps[0].Turnaround
	}
	return bases
}

func main() {
	model, err := colab.TrainSpeedupModel()
	if err != nil {
		log.Fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "config\tsched\tH_ANTT\tH_STP")
	for _, cfg := range colab.EvaluatedConfigs() {
		bases := baselineTurnarounds(cfg.NumCores())
		for _, s := range []struct {
			name string
			mk   func() colab.Scheduler
		}{
			{"linux", colab.NewLinux},
			{"wash", func() colab.Scheduler { return colab.NewWASH(model) }},
			{"colab", func() colab.Scheduler { return colab.NewCOLAB(model) }},
		} {
			w, err := colab.BuildWorkload(workloadIndex, seed)
			if err != nil {
				log.Fatal(err)
			}
			res, err := colab.Run(cfg, s.mk(), w)
			if err != nil {
				log.Fatal(err)
			}
			score, err := colab.Score(res, bases)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\n", cfg.Name, s.name, score.HANTT, score.HSTP)
		}
	}
	tw.Flush()
	fmt.Printf("\nworkload %s: H_ANTT lower is better, H_STP higher is better\n", workloadIndex)
}
