package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: colab
cpu: Example CPU
BenchmarkTable2TrainSpeedupModel-8   	       1	  55113272 ns/op	         0.975 R2
BenchmarkTable3Characterization-8    	       1	   1201000 ns/op	  524288 B/op	    1024 allocs/op
BenchmarkSummaryAll-8                	       1	9000000000 ns/op	         0.621 colab-H_ANTT-vs-linux	         0.811 wash-H_ANTT-vs-linux
PASS
ok  	colab	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkTable2TrainSpeedupModel" || b0.Iterations != 1 || b0.NsPerOp != 55113272 {
		t.Errorf("first benchmark parsed as %+v", b0)
	}
	if got := b0.Metrics["R2"]; got != 0.975 {
		t.Errorf("R2 metric %v, want 0.975", got)
	}
	b2 := rep.Benchmarks[2]
	if got := b2.Metrics["colab-H_ANTT-vs-linux"]; got != 0.621 {
		t.Errorf("custom metric %v, want 0.621", got)
	}
	if _, ok := rep.Benchmarks[1].Metrics["allocs/op"]; !ok {
		t.Error("allocs/op metric lost")
	}
	if rep.GoVersion == "" || rep.GOOS == "" {
		t.Error("environment metadata missing")
	}
}

func TestParseRejectsEmptyAndMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok colab 1s\n")); err == nil {
		t.Error("empty bench output must be an error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 1 12 ns/op trailing\n")); err == nil {
		t.Error("odd value/unit pairing must be an error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 1 notanumber ns/op\n")); err == nil {
		t.Error("non-numeric value must be an error")
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "BENCH_ci.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", in, "-out", out}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artefact is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("artefact holds %d benchmarks, want 3", len(rep.Benchmarks))
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo-128":    "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
		"BenchmarkFoo-bar-16": "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

func mkReport(ns map[string]float64) *Report {
	rep := &Report{}
	var names []string
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: ns[name]})
	}
	return rep
}

func TestTrendPassesWithinTolerance(t *testing.T) {
	prev := mkReport(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200, "BenchmarkGone": 10})
	cur := mkReport(map[string]float64{"BenchmarkA": 105, "BenchmarkB": 150, "BenchmarkNew": 42})
	var out bytes.Buffer
	if err := Trend(&out, prev, cur, 10); err != nil {
		t.Fatalf("within-tolerance trend failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"trend gate passed", "NEW", "BenchmarkNew", "REMOVED", "BenchmarkGone", "+5.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("trend output misses %q:\n%s", want, s)
		}
	}
}

func TestTrendFailsOnRegression(t *testing.T) {
	prev := mkReport(map[string]float64{"BenchmarkA": 100})
	cur := mkReport(map[string]float64{"BenchmarkA": 125})
	var out bytes.Buffer
	err := Trend(&out, prev, cur, 10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") || !strings.Contains(err.Error(), "+25.0%") {
		t.Fatalf("25%% regression must fail the gate naming the benchmark, got %v", err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("trend output misses REGRESSED line:\n%s", out.String())
	}
}

func TestRunTrendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ns float64) string {
		path := filepath.Join(dir, name)
		data, err := json.MarshalIndent(mkReport(map[string]float64{"BenchmarkA": ns}), "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	prev := write("prev.json", 100)
	curOK := write("ok.json", 102)
	curBad := write("bad.json", 200)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-injson", curOK, "-trend", prev}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("ok trend run failed: %v", err)
	}
	if err := run([]string{"-injson", curBad, "-trend", prev}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Fatal("regressed trend run must fail")
	}
	if err := run([]string{"-injson", curBad, "-trend", prev, "-max-regress", "150"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("loosened tolerance must pass: %v", err)
	}
}

func TestTrendNormalisesRunnerSpeedShift(t *testing.T) {
	// Six benchmarks all ~30% slower (a slower runner) must pass; a seventh
	// that is 30% slower on top of that must still fail.
	prev := map[string]float64{}
	cur := map[string]float64{}
	for _, name := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC", "BenchmarkD", "BenchmarkE", "BenchmarkF"} {
		prev[name] = 1000
		cur[name] = 1300
	}
	var out bytes.Buffer
	if err := Trend(&out, mkReport(prev), mkReport(cur), 10); err != nil {
		t.Fatalf("uniform 30%% slowdown must be normalised away: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "runner speed shift") {
		t.Errorf("normalisation not reported:\n%s", out.String())
	}
	prev["BenchmarkG"] = 1000
	cur["BenchmarkG"] = 1300 * 1.3
	out.Reset()
	err := Trend(&out, mkReport(prev), mkReport(cur), 10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkG") {
		t.Fatalf("benchmark-specific regression must still fail after normalisation, got %v\n%s", err, out.String())
	}
}

// A benchmark reporting a "/sec" throughput metric is higher-is-better:
// a throughput drop fails the gate even when ns/op is flat, and a
// throughput rise passes even when ns/op grew (a fixed-duration
// benchmark's ns/op says nothing about its throughput).
func TestTrendGatesThroughputMetricsHigherIsBetter(t *testing.T) {
	bench := func(ns, eps float64) *Report {
		return &Report{Benchmarks: []Benchmark{{
			Name: "BenchmarkKernelHotPath", Iterations: 1, NsPerOp: ns,
			Metrics: map[string]float64{"events/sec": eps},
		}}}
	}
	var out bytes.Buffer
	err := Trend(&out, bench(1000, 2_000_000), bench(1000, 1_400_000), 10)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkKernelHotPath") {
		t.Fatalf("30%% throughput drop must fail the gate, got %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "events/sec") {
		t.Errorf("gate output does not report the gated unit:\n%s", out.String())
	}
	out.Reset()
	if err := Trend(&out, bench(1000, 2_000_000), bench(3000, 2_500_000), 10); err != nil {
		t.Fatalf("throughput rise must pass regardless of ns/op: %v\n%s", err, out.String())
	}
	// The metric must only gate when both runs report it: against an old
	// report without events/sec the benchmark falls back to ns/op.
	out.Reset()
	old := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkKernelHotPath", Iterations: 1, NsPerOp: 1000}}}
	if err := Trend(&out, old, bench(1050, 2_000_000), 10); err != nil {
		t.Fatalf("ns/op fallback within tolerance must pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ns/op") {
		t.Errorf("fallback gate did not report ns/op:\n%s", out.String())
	}
}

// The runner speed-shift normalisation must fold throughput benchmarks in
// as cost ratios: a uniformly slower runner lowers every events/sec alike
// and must not trip the gate.
func TestTrendNormalisesThroughputSpeedShift(t *testing.T) {
	mk := func(scale float64) *Report {
		rep := &Report{}
		for _, name := range []string{"BenchmarkA", "BenchmarkB", "BenchmarkC"} {
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: name, Iterations: 1, NsPerOp: 1000 * scale})
		}
		for _, name := range []string{"BenchmarkT1", "BenchmarkT2", "BenchmarkT3"} {
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{
				Name: name, Iterations: 1, NsPerOp: 500,
				Metrics: map[string]float64{"events/sec": 1_000_000 / scale},
			})
		}
		return rep
	}
	var out bytes.Buffer
	if err := Trend(&out, mk(1), mk(1.3), 10); err != nil {
		t.Fatalf("uniform 30%% slowdown across ns/op and events/sec must be normalised away: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "runner speed shift") {
		t.Errorf("normalisation not reported:\n%s", out.String())
	}
}

func writeReportFile(t *testing.T, dir, name string, ns float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(mkReport(map[string]float64{"BenchmarkA": ns}), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// -append maintains a bounded ring: runs accumulate newest-last and the
// oldest entries fall off once the ring is full.
func TestAppendHistoryRing(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_history.json")
	for i, ns := range []float64{100, 110, 120} {
		rep := mkReport(map[string]float64{"BenchmarkA": ns})
		n, err := AppendHistory(hist, rep, 2, "commit-"+string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		if want := i + 1; i < 2 && n != want {
			t.Fatalf("run %d: ring holds %d, want %d", i, n, want)
		}
	}
	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	var h History
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if len(h.Runs) != 2 {
		t.Fatalf("ring holds %d runs, want 2 (size bound)", len(h.Runs))
	}
	if h.Runs[0].Commit != "commit-b" || h.Runs[1].Commit != "commit-c" {
		t.Fatalf("oldest run not dropped: %+v", h.Runs)
	}
	if h.Runs[1].Report.Benchmarks[0].NsPerOp != 120 {
		t.Fatalf("newest run ns = %v, want 120", h.Runs[1].Report.Benchmarks[0].NsPerOp)
	}
	if h.Runs[1].Time == "" {
		t.Error("appended entry missing timestamp")
	}
	if _, err := AppendHistory(hist, mkReport(map[string]float64{"BenchmarkA": 1}), 0, ""); err == nil {
		t.Error("size 0 must error")
	}
}

// -trend against a history document diffs the newest archived run.
func TestTrendAgainstHistory(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_history.json")
	for _, ns := range []float64{100, 200} {
		if _, err := AppendHistory(hist, mkReport(map[string]float64{"BenchmarkA": ns}), 10, ""); err != nil {
			t.Fatal(err)
		}
	}
	var stdout, stderr bytes.Buffer
	// Current run at 208 ns: +4% vs the newest history run (200), but +108%
	// vs the oldest — passing proves the newest entry is the baseline.
	cur := writeReportFile(t, dir, "cur.json", 208)
	if err := run([]string{"-injson", cur, "-trend", hist}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("trend vs history must use the newest run: %v\n%s", err, stdout.String())
	}
	bad := writeReportFile(t, dir, "bad.json", 300)
	if err := run([]string{"-injson", bad, "-trend", hist}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Fatal("regression vs newest history run must fail")
	}
}

// The -append flag round-trips through run(), creating the file on first
// use.
func TestRunAppendEndToEnd(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_history.json")
	cur := writeReportFile(t, dir, "cur.json", 100)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-injson", cur, "-append", hist, "-commit", "abc123"}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "appended run") {
		t.Errorf("append not reported: %s", stdout.String())
	}
	rep, err := loadBaseline(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].NsPerOp != 100 {
		t.Fatalf("baseline from fresh history = %+v", rep)
	}
}

// -trend and -append against the same history file must gate against the
// pre-append baseline — not the freshly appended run (which would always
// pass) — and a failed gate must not archive the regressed run.
func TestTrendThenAppendSameFile(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "BENCH_history.json")
	if _, err := AppendHistory(hist, mkReport(map[string]float64{"BenchmarkA": 100}), 10, "base"); err != nil {
		t.Fatal(err)
	}
	bad := writeReportFile(t, dir, "bad.json", 200)
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-injson", bad, "-trend", hist, "-append", hist}, strings.NewReader(""), &stdout, &stderr); err == nil {
		t.Fatal("regression must fail the gate even with -append on the same file")
	}
	rep, err := loadBaseline(hist)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].NsPerOp != 100 {
		t.Fatalf("failed gate must not archive the regressed run; baseline ns = %v", rep.Benchmarks[0].NsPerOp)
	}
	ok := writeReportFile(t, dir, "ok.json", 104)
	if err := run([]string{"-injson", ok, "-trend", hist, "-append", hist}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatalf("within-tolerance run with trend+append: %v", err)
	}
	rep, err = loadBaseline(hist)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmarks[0].NsPerOp != 104 {
		t.Fatalf("passing run must be archived after the gate; baseline ns = %v", rep.Benchmarks[0].NsPerOp)
	}
}

// -out must be honoured even when -trend/-append run in the same
// invocation (the one-shot convert+gate+archive form).
func TestOutWrittenAlongsideTrendAndAppend(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	outPath := filepath.Join(dir, "BENCH_ci.json")
	hist := filepath.Join(dir, "BENCH_history.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", in, "-out", outPath, "-append", hist}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	rep, err := loadReport(outPath)
	if err != nil {
		t.Fatalf("-out skipped when combined with -append: %v", err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("-out artefact holds %d benchmarks, want 3", len(rep.Benchmarks))
	}
}
