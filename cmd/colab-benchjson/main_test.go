package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: colab
cpu: Example CPU
BenchmarkTable2TrainSpeedupModel-8   	       1	  55113272 ns/op	         0.975 R2
BenchmarkTable3Characterization-8    	       1	   1201000 ns/op	  524288 B/op	    1024 allocs/op
BenchmarkSummaryAll-8                	       1	9000000000 ns/op	         0.621 colab-H_ANTT-vs-linux	         0.811 wash-H_ANTT-vs-linux
PASS
ok  	colab	12.345s
`

func TestParseBenchOutput(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkTable2TrainSpeedupModel" || b0.Iterations != 1 || b0.NsPerOp != 55113272 {
		t.Errorf("first benchmark parsed as %+v", b0)
	}
	if got := b0.Metrics["R2"]; got != 0.975 {
		t.Errorf("R2 metric %v, want 0.975", got)
	}
	b2 := rep.Benchmarks[2]
	if got := b2.Metrics["colab-H_ANTT-vs-linux"]; got != 0.621 {
		t.Errorf("custom metric %v, want 0.621", got)
	}
	if _, ok := rep.Benchmarks[1].Metrics["allocs/op"]; !ok {
		t.Error("allocs/op metric lost")
	}
	if rep.GoVersion == "" || rep.GOOS == "" {
		t.Error("environment metadata missing")
	}
}

func TestParseRejectsEmptyAndMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok colab 1s\n")); err == nil {
		t.Error("empty bench output must be an error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 1 12 ns/op trailing\n")); err == nil {
		t.Error("odd value/unit pairing must be an error")
	}
	if _, err := Parse(strings.NewReader("BenchmarkX-8 1 notanumber ns/op\n")); err == nil {
		t.Error("non-numeric value must be an error")
	}
}

func TestRunWritesJSONFile(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "BENCH_ci.json")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", in, "-out", out}, strings.NewReader(""), &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("artefact is not valid JSON: %v", err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("artefact holds %d benchmarks, want 3", len(rep.Benchmarks))
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":      "BenchmarkFoo",
		"BenchmarkFoo-128":    "BenchmarkFoo",
		"BenchmarkFoo":        "BenchmarkFoo",
		"BenchmarkFoo-bar":    "BenchmarkFoo-bar",
		"BenchmarkFoo-bar-16": "BenchmarkFoo-bar",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
