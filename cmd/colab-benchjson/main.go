// Command colab-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish the benchmark
// trajectory (ns/op plus the harness's custom metrics such as
// H_ANTT-vs-linux and R2) as a build artefact.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | colab-benchjson -out BENCH_ci.json
//	colab-benchjson -in bench.txt -out BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark function name with the -GOMAXPROCS suffix
	// stripped (e.g. "BenchmarkSummaryAll").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further reported unit (B/op, allocs/op and the
	// custom b.ReportMetric series like H_ANTT-vs-linux).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document layout of BENCH_ci.json.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	out := fs.String("out", "", "JSON destination (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	rep, err := Parse(src)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out != "" {
		return os.WriteFile(*out, data, 0o644)
	}
	_, err = stdout.Write(data)
	return err
}

// Parse reads `go test -bench` output and collects every benchmark line.
// Non-benchmark lines (headers, PASS/ok, test logs) are skipped; malformed
// benchmark lines are an error so CI fails loudly rather than publishing a
// truncated artefact.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// A result line is "BenchmarkName-P N <value unit>...": require a
		// numeric iteration count to skip "BenchmarkX ran in ..." chatter.
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(fields[0]), Iterations: iters}
		rest := fields[2:]
		if len(rest)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line (odd value/unit pairing): %q", line)
		}
		for i := 0; i < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, fmt.Errorf("malformed value %q in line %q: %v", rest[i], line, err)
			}
			unit := rest[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rep, nil
}

// trimProcs strips the trailing -GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
