// Command colab-benchjson converts `go test -bench` text output into a
// machine-readable JSON document, so CI can publish the benchmark
// trajectory (ns/op plus the harness's custom metrics such as
// H_ANTT-vs-linux and R2) as a build artefact. It doubles as CI's trend
// gate: -trend diffs the current report against a baseline and fails on
// regressions beyond -max-regress percent — gauged in ns/op, except for
// benchmarks reporting a "/sec" throughput metric (such as events/sec),
// which are higher-is-better and fail on throughput drops instead.
//
// -append maintains BENCH_history.json, a committed ring of the last
// -history-size main-branch runs, so the trend baseline survives beyond
// the CI artifact retention window; -trend accepts either a single report
// or such a history document (it diffs against the newest run).
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' ./... | colab-benchjson -out BENCH_ci.json
//	colab-benchjson -in bench.txt -out BENCH_ci.json
//	colab-benchjson -injson BENCH_ci.json -trend BENCH_history.json -max-regress 10
//	colab-benchjson -injson BENCH_ci.json -append BENCH_history.json -commit "$GITHUB_SHA"
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"colab/internal/mathx"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark function name with the -GOMAXPROCS suffix
	// stripped (e.g. "BenchmarkSummaryAll").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the reported wall time per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further reported unit (B/op, allocs/op and the
	// custom b.ReportMetric series like H_ANTT-vs-linux).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the document layout of BENCH_ci.json.
type Report struct {
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// HistoryEntry is one archived run in the BENCH_history.json ring.
type HistoryEntry struct {
	// Commit is the source revision the run measured (when known).
	Commit string `json:"commit,omitempty"`
	// Time is the UTC RFC 3339 instant the entry was appended.
	Time   string  `json:"time,omitempty"`
	Report *Report `json:"report"`
}

// History is the document layout of BENCH_history.json: a bounded ring of
// main-branch runs, newest last. Committing it to the repository gives the
// trend gate a baseline that outlives the CI artifact retention window.
type History struct {
	Runs []HistoryEntry `json:"runs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-benchjson: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	inJSON := fs.String("injson", "", "read an already-converted JSON report instead of bench text")
	out := fs.String("out", "", "JSON destination (default: stdout)")
	trend := fs.String("trend", "", "baseline to diff against (single report or BENCH_history.json); regressions fail the run")
	maxRegress := fs.Float64("max-regress", 10, "ns/op regression tolerance for -trend, in percent")
	appendPath := fs.String("append", "", "append the report to this BENCH_history.json ring (committed long-horizon trend store)")
	histSize := fs.Int("history-size", 30, "runs kept in the -append ring (oldest dropped first)")
	commit := fs.String("commit", "", "source revision recorded with -append")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var rep *Report
	if *inJSON != "" {
		var err error
		if rep, err = loadReport(*inJSON); err != nil {
			return err
		}
	} else {
		src := stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			src = f
		}
		var err error
		if rep, err = Parse(src); err != nil {
			return err
		}
	}

	// -out is honoured regardless of -trend/-append (a failed gate still
	// leaves the converted artefact behind for inspection and upload).
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}
	// Trend before append: with both flags aimed at the same history file,
	// the baseline must be the pre-append newest run, not the run itself.
	if *trend != "" {
		prev, err := loadBaseline(*trend)
		if err != nil {
			return err
		}
		if err := Trend(stdout, prev, rep, *maxRegress); err != nil {
			return err
		}
	}
	if *appendPath != "" {
		n, err := AppendHistory(*appendPath, rep, *histSize, *commit)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "appended run to %s (%d kept)\n", *appendPath, n)
	}
	if *trend != "" || *appendPath != "" || *out != "" {
		return nil
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = stdout.Write(data)
	return err
}

// loadBaseline reads a trend baseline: either a BENCH_history.json ring
// (the newest run is the baseline) or a single BENCH_ci.json report.
func loadBaseline(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var h History
	if err := json.Unmarshal(data, &h); err == nil && len(h.Runs) > 0 {
		rep := h.Runs[len(h.Runs)-1].Report
		if rep == nil || len(rep.Benchmarks) == 0 {
			return nil, fmt.Errorf("%s: newest history run holds no benchmarks", path)
		}
		return rep, nil
	}
	return loadReport(path)
}

// AppendHistory appends rep to the history ring at path (creating it when
// missing), keeping at most size runs, and returns how many runs the ring
// holds afterwards.
func AppendHistory(path string, rep *Report, size int, commit string) (int, error) {
	if size < 1 {
		return 0, fmt.Errorf("history size %d; need at least 1", size)
	}
	h := &History{}
	data, err := os.ReadFile(path)
	switch {
	case err == nil:
		if err := json.Unmarshal(data, h); err != nil {
			return 0, fmt.Errorf("parsing %s: %w", path, err)
		}
	case os.IsNotExist(err):
		// First run: start an empty ring.
	default:
		return 0, err
	}
	h.Runs = append(h.Runs, HistoryEntry{
		Commit: commit,
		Time:   time.Now().UTC().Format(time.RFC3339),
		Report: rep,
	})
	if len(h.Runs) > size {
		h.Runs = h.Runs[len(h.Runs)-size:]
	}
	out, err := json.MarshalIndent(h, "", "  ")
	if err != nil {
		return 0, err
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return 0, err
	}
	return len(h.Runs), nil
}

// loadReport reads a previously written BENCH_ci.json document.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s holds no benchmarks", path)
	}
	return rep, nil
}

// Trend diffs cur against prev and writes one line per shared benchmark.
// Per-benchmark cost ratios are first divided by their median, cancelling
// the systematic speed difference between two CI runners (a uniformly
// slower machine shifts every benchmark alike and must not trip the
// gate). It errors when any shared benchmark regressed by more than
// maxRegress percent beyond that median shift; new and removed benchmarks
// are reported but never fail the gate.
//
// A benchmark reporting a throughput metric — any unit ending in "/sec",
// such as the kernel's events/sec — is gated on that metric as
// higher-is-better: its cost ratio is old/new throughput, so a throughput
// drop regresses exactly like an ns/op rise (and a throughput rise can
// never be misread as a slowdown). All other benchmarks gate on ns/op.
func Trend(w io.Writer, prev, cur *Report, maxRegress float64) error {
	prevBench := make(map[string]Benchmark, len(prev.Benchmarks))
	for _, b := range prev.Benchmarks {
		prevBench[b.Name] = b
	}
	var ratios []float64
	for _, b := range cur.Benchmarks {
		if old, ok := prevBench[b.Name]; ok {
			if r, _, valid := costRatio(old, b); valid {
				ratios = append(ratios, r)
			}
		}
	}
	// With too few shared benchmarks the median is dominated by the very
	// regressions it should cancel; fall back to raw ratios there.
	speedShift := 1.0
	if len(ratios) >= minSharedForShift {
		speedShift = mathx.Median(ratios)
	}
	if speedShift != 1 {
		fmt.Fprintf(w, "runner speed shift (median ratio, normalised out): %+.1f%%\n", (speedShift-1)*100)
	}
	seen := make(map[string]bool, len(cur.Benchmarks))
	var regressed []string
	for _, b := range cur.Benchmarks {
		seen[b.Name] = true
		old, ok := prevBench[b.Name]
		if !ok {
			fmt.Fprintf(w, "NEW       %-40s %14.0f ns/op\n", b.Name, b.NsPerOp)
			continue
		}
		ratio, unit, valid := costRatio(old, b)
		delta := 0.0
		if valid {
			delta = (ratio/speedShift - 1) * 100
		}
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s (%+.1f%%)", b.Name, delta))
		}
		oldV, curV := old.NsPerOp, b.NsPerOp
		if unit != "ns/op" {
			oldV, curV = old.Metrics[unit], b.Metrics[unit]
		}
		fmt.Fprintf(w, "%-9s %-40s %14.0f -> %.0f %s (%+.1f%% cost vs median shift)\n", status, b.Name, oldV, curV, unit, delta)
	}
	var removed []string
	for name := range prevBench {
		if !seen[name] {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "REMOVED   %s\n", name)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.1f%%: %s",
			len(regressed), maxRegress, strings.Join(regressed, ", "))
	}
	fmt.Fprintf(w, "trend gate passed: no regression beyond %.1f%%\n", maxRegress)
	return nil
}

// costRatio compares cur against old in the unit the benchmark is gated
// on, returning the relative cost (>1 means cur is worse). Benchmarks
// reporting a "/sec" throughput metric in both runs gate on it as
// higher-is-better (cost = old/new throughput); everything else gates on
// ns/op. valid is false when neither unit has a usable pair of values.
func costRatio(old, cur Benchmark) (ratio float64, unit string, valid bool) {
	units := make([]string, 0, len(cur.Metrics))
	for u := range cur.Metrics {
		if strings.HasSuffix(u, "/sec") {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	for _, u := range units {
		if o, c := old.Metrics[u], cur.Metrics[u]; o > 0 && c > 0 {
			return o / c, u, true
		}
	}
	if old.NsPerOp > 0 && cur.NsPerOp > 0 {
		return cur.NsPerOp / old.NsPerOp, "ns/op", true
	}
	return 1, "ns/op", false
}

// minSharedForShift is the fewest shared benchmarks for which the median
// ratio is treated as runner speed rather than code.
const minSharedForShift = 5

// Parse reads `go test -bench` output and collects every benchmark line.
// Non-benchmark lines (headers, PASS/ok, test logs) are skipped; malformed
// benchmark lines are an error so CI fails loudly rather than publishing a
// truncated artefact.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// A result line is "BenchmarkName-P N <value unit>...": require a
		// numeric iteration count to skip "BenchmarkX ran in ..." chatter.
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: trimProcs(fields[0]), Iterations: iters}
		rest := fields[2:]
		if len(rest)%2 != 0 {
			return nil, fmt.Errorf("malformed benchmark line (odd value/unit pairing): %q", line)
		}
		for i := 0; i < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				return nil, fmt.Errorf("malformed value %q in line %q: %v", rest[i], line, err)
			}
			unit := rest[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	return rep, nil
}

// trimProcs strips the trailing -GOMAXPROCS suffix from a benchmark name.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
