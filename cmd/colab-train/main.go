// Command colab-train regenerates the paper's Table 2: it collects the
// offline training set (every benchmark single-program on symmetric
// big-only and little-only machines), selects the six most informative
// performance counters with PCA and fits the linear speedup model.
//
// Usage:
//
//	colab-train [-cores N] [-seed S] [-k K] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"colab/internal/perfmodel"
)

func main() {
	cores := flag.Int("cores", 4, "core count of the symmetric training machines")
	seed := flag.Uint64("seed", 42, "workload generation seed")
	k := flag.Int("k", perfmodel.NumSelected, "number of counters to select")
	verbose := flag.Bool("v", false, "print per-sample predictions")
	flag.Parse()

	samples, err := perfmodel.CollectSamples(perfmodel.CollectOptions{Cores: *cores, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "colab-train:", err)
		os.Exit(1)
	}
	model, err := perfmodel.Train(samples, *k)
	if err != nil {
		fmt.Fprintln(os.Stderr, "colab-train:", err)
		os.Exit(1)
	}
	fmt.Println("== Table 2: selected performance counters and speedup model ==")
	fmt.Print(model.Describe())

	if *verbose {
		sort.Slice(samples, func(i, j int) bool { return samples[i].Bench < samples[j].Bench })
		fmt.Println("\nper-thread training samples (measured vs predicted):")
		for _, s := range samples {
			fmt.Printf("  %-16s measured=%.3f predicted=%.3f\n", s.Bench, s.Speedup, model.Predict(s.Counters))
		}
	}
}
