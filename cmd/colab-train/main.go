// Command colab-train regenerates the paper's Table 2: it collects the
// offline training set (every benchmark single-program on symmetric
// big-only and little-only machines), selects the six most informative
// performance counters with PCA and fits the linear speedup model.
// With -tiers trigear it instead trains one model per upper tier of the
// tri-gear palette (the predictors colab-dvfs uses).
//
// Usage:
//
//	colab-train [-cores N] [-seed S] [-k K] [-v]
//	colab-train -tiers trigear
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"colab/internal/cpu"
	"colab/internal/perfmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-train: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cores := fs.Int("cores", 4, "core count of the symmetric training machines")
	seed := fs.Uint64("seed", 42, "workload generation seed")
	k := fs.Int("k", perfmodel.NumSelected, "number of counters to select")
	verbose := fs.Bool("v", false, "print per-sample predictions")
	tierSet := fs.String("tiers", "", "train per-tier models instead: trigear")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *tierSet != "" {
		var tiers []cpu.Tier
		switch *tierSet {
		case "trigear":
			tiers = cpu.TriGearTiers()
		default:
			return fmt.Errorf("unknown tier palette %q (want trigear)", *tierSet)
		}
		tm, err := perfmodel.TrainTiered(tiers, perfmodel.CollectOptions{Cores: *cores, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "== per-tier speedup models (tri-gear extension of Table 2) ==")
		fmt.Fprint(stdout, tm.Describe())
		return nil
	}

	samples, err := perfmodel.CollectSamples(perfmodel.CollectOptions{Cores: *cores, Seed: *seed})
	if err != nil {
		return err
	}
	model, err := perfmodel.Train(samples, *k)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "== Table 2: selected performance counters and speedup model ==")
	fmt.Fprint(stdout, model.Describe())

	if *verbose {
		sort.Slice(samples, func(i, j int) bool { return samples[i].Bench < samples[j].Bench })
		fmt.Fprintln(stdout, "\nper-thread training samples (measured vs predicted):")
		for _, s := range samples {
			fmt.Fprintf(stdout, "  %-16s measured=%.3f predicted=%.3f\n", s.Bench, s.Speedup, model.Predict(s.Counters))
		}
	}
	return nil
}
