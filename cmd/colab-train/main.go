// Command colab-train regenerates the paper's Table 2: it collects the
// offline training set (every benchmark single-program on symmetric
// big-only and little-only machines), selects the six most informative
// performance counters with PCA and fits the linear speedup model.
//
// Usage:
//
//	colab-train [-cores N] [-seed S] [-k K] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"colab/internal/perfmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-train: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-train", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cores := fs.Int("cores", 4, "core count of the symmetric training machines")
	seed := fs.Uint64("seed", 42, "workload generation seed")
	k := fs.Int("k", perfmodel.NumSelected, "number of counters to select")
	verbose := fs.Bool("v", false, "print per-sample predictions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	samples, err := perfmodel.CollectSamples(perfmodel.CollectOptions{Cores: *cores, Seed: *seed})
	if err != nil {
		return err
	}
	model, err := perfmodel.Train(samples, *k)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "== Table 2: selected performance counters and speedup model ==")
	fmt.Fprint(stdout, model.Describe())

	if *verbose {
		sort.Slice(samples, func(i, j int) bool { return samples[i].Bench < samples[j].Bench })
		fmt.Fprintln(stdout, "\nper-thread training samples (measured vs predicted):")
		for _, s := range samples {
			fmt.Fprintf(stdout, "  %-16s measured=%.3f predicted=%.3f\n", s.Bench, s.Speedup, model.Predict(s.Counters))
		}
	}
	return nil
}
