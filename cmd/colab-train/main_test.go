package main

import (
	"strings"
	"testing"
)

func TestRunTrainsModel(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-cores", "2", "-k", "4"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Table 2", "Linear predictive speedup model", "Fit: R2="} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunFlagError(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-nope"}, &out, &errb); err == nil {
		t.Error("want flag parse error for -nope")
	}
}
