// Command colab-bench regenerates the paper's evaluation artefacts: the
// Table 2 speedup model, the Figure 4 single-program study, the class
// figures 5-7, the regroupings of figures 8-9, the 312-experiment summary
// and the extension ablations.
//
// Usage:
//
//	colab-bench              # everything
//	colab-bench -fig 5       # one figure
//	colab-bench -summary     # just the closing aggregate
//	colab-bench -ablation    # design-choice ablations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/workload"
)

type job struct {
	name string
	run  func() (string, error)
}

func tableJob(name string, f func() (*experiment.Table, error)) job {
	return job{name: name, run: func() (string, error) {
		t, err := f()
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}}
}

func main() {
	fig := flag.Int("fig", 0, "regenerate a single figure (4-9)")
	summary := flag.Bool("summary", false, "regenerate only the 312-experiment summary")
	ablation := flag.Bool("ablation", false, "run the COLAB design-choice ablations")
	energy := flag.Bool("energy", false, "run the energy/EDP extension table")
	replication := flag.Bool("replication", false, "run the multi-seed variance table")
	detail := flag.Bool("detail", false, "print every per-workload cell of the matrix")
	tables := flag.Bool("tables", false, "regenerate only tables 2-4")
	csvPath := flag.String("csv", "", "also export the full 26x4 matrix as CSV to this file")
	seed := flag.Uint64("seed", 1, "workload generation seed")
	flag.Parse()

	start := time.Now()
	r, err := experiment.NewRunner(*seed)
	if err != nil {
		fail("%v", err)
	}

	all := []job{
		{name: "table2", run: experiment.Table2},
		{name: "table3", run: func() (string, error) { return experiment.Table3().String(), nil }},
		{name: "table4", run: func() (string, error) { return experiment.Table4().String(), nil }},
		tableJob("fig4", r.Figure4),
		tableJob("fig5", r.Figure5),
		tableJob("fig6", r.Figure6),
		tableJob("fig7", r.Figure7),
		tableJob("fig8", r.Figure8),
		tableJob("fig9", r.Figure9),
		tableJob("summary", r.Summary),
		tableJob("ablation", r.Ablation),
		tableJob("energy", r.EnergyTable),
		tableJob("replication", func() (*experiment.Table, error) {
			return experiment.ReplicationTable(nil)
		}),
		tableJob("detail", r.DetailTable),
	}

	var names []string
	switch {
	case *fig != 0:
		names = []string{fmt.Sprintf("fig%d", *fig)}
	case *summary:
		names = []string{"summary"}
	case *ablation:
		names = []string{"ablation"}
	case *energy:
		names = []string{"energy"}
	case *replication:
		names = []string{"replication"}
	case *detail:
		names = []string{"detail"}
	case *tables:
		names = []string{"table2", "table3", "table4"}
	default:
		for _, j := range all {
			// replication is opt-in (5x the matrix cost); detail is opt-in
			// (104 rows of output).
			if j.name != "replication" && j.name != "detail" {
				names = append(names, j.name)
			}
		}
	}

	if *csvPath != "" {
		cells, err := r.RunMatrix(workload.Compositions(), cpu.EvaluatedConfigs(),
			[]string{experiment.SchedWASH, experiment.SchedCOLAB})
		if err != nil {
			fail("csv export: %v", err)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fail("csv export: %v", err)
		}
		if err := experiment.WriteCellsCSV(f, cells); err != nil {
			fail("csv export: %v", err)
		}
		if err := f.Close(); err != nil {
			fail("csv export: %v", err)
		}
		fmt.Fprintf(os.Stderr, "colab-bench: wrote %s\n", *csvPath)
	}

	ran := 0
	for _, n := range names {
		for _, j := range all {
			if j.name != n {
				continue
			}
			out, err := j.run()
			if err != nil {
				fail("%s: %v", j.name, err)
			}
			fmt.Println(out)
			ran++
		}
	}
	if ran == 0 {
		fail("nothing selected (unknown figure?)")
	}
	fmt.Fprintf(os.Stderr, "colab-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "colab-bench: "+format+"\n", args...)
	os.Exit(1)
}
