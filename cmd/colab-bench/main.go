// Command colab-bench regenerates the paper's evaluation artefacts: the
// Table 2 speedup model, the Figure 4 single-program study, the class
// figures 5-7, the regroupings of figures 8-9, the 312-experiment summary,
// the extension ablations and the tri-gear multi-tier study.
//
// Usage:
//
//	colab-bench              # everything
//	colab-bench -fig 5       # one figure
//	colab-bench -summary     # just the closing aggregate
//	colab-bench -ablation    # stage-swap + design-choice ablations
//	colab-bench -delta       # paper-vs-repro quantitative delta table
//	colab-bench -trigear     # six policies on the 2B2M2S machine
//	colab-bench -oppsweep    # COLAB across the 2B2M2S frequency ladders
//	colab-bench -numa        # migration-cost sensitivity on the 2x2B2S machine
//
// Ctrl-C cancels: context-aware jobs (-delta, -csv) abort mid-matrix, the
// job loop stops before the next job, and a second Ctrl-C kills outright.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"time"

	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/workload"
)

type job struct {
	name string
	run  func() (string, error)
}

func tableJob(name string, f func() (*experiment.Table, error)) job {
	return job{name: name, run: func() (string, error) {
		t, err := f()
		if err != nil {
			return "", err
		}
		return t.String(), nil
	}}
}

func main() {
	// Two-stage interrupt: the first Ctrl-C cancels ctx (context-aware jobs
	// abort mid-matrix, the job loop stops before the next job); the second
	// falls back to the default signal action and kills the process.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "colab-bench: interrupt — cancelling (press Ctrl-C again to kill)")
		cancel()
		signal.Stop(sig)
	}()
	if err := run(ctx, os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.Int("fig", 0, "regenerate a single figure (4-9)")
	summary := fs.Bool("summary", false, "regenerate only the 312-experiment summary")
	ablation := fs.Bool("ablation", false, "run the COLAB stage-swap and design-choice ablations")
	delta := fs.Bool("delta", false, "run the paper-vs-reproduction delta table")
	energy := fs.Bool("energy", false, "run the energy/EDP extension table")
	trigear := fs.Bool("trigear", false, "run the tri-gear (2B2M2S) policy extension table")
	oppsweep := fs.Bool("oppsweep", false, "run the COLAB frequency-ladder sweep on the 2B2M2S machine")
	numa := fs.Bool("numa", false, "run the NUMA migration-cost sensitivity sweep on the 2x2B2S machine")
	replication := fs.Bool("replication", false, "run the multi-seed variance table")
	classes := fs.Bool("classes", false, "run the standard-suite per-class table (@class= regrouping)")
	detail := fs.Bool("detail", false, "print every per-workload cell of the matrix")
	tables := fs.Bool("tables", false, "regenerate only tables 2-4")
	csvPath := fs.String("csv", "", "also export the full 26x4 matrix as CSV to this file")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	start := time.Now()
	r, err := experiment.NewRunner(*seed)
	if err != nil {
		return err
	}

	all := []job{
		{name: "table2", run: experiment.Table2},
		{name: "table3", run: func() (string, error) { return experiment.Table3().String(), nil }},
		{name: "table4", run: func() (string, error) { return experiment.Table4().String(), nil }},
		tableJob("fig4", r.Figure4),
		tableJob("fig5", r.Figure5),
		tableJob("fig6", r.Figure6),
		tableJob("fig7", r.Figure7),
		tableJob("fig8", r.Figure8),
		tableJob("fig9", r.Figure9),
		tableJob("summary", r.Summary),
		tableJob("delta", func() (*experiment.Table, error) { return r.DeltaTable(ctx) }),
		{name: "ablation", run: func() (string, error) {
			// Stage-swap ablation (the pipeline-API regeneration of the
			// paper's ablation argument) followed by the legacy
			// option-switch variants.
			stage, err := r.AblationTable(ctx)
			if err != nil {
				return "", err
			}
			opts, err := r.Ablation()
			if err != nil {
				return "", err
			}
			return stage.String() + "\n" + opts.String(), nil
		}},
		tableJob("energy", r.EnergyTable),
		tableJob("trigear", r.TriGearTable),
		tableJob("oppsweep", r.OPPSweepTable),
		tableJob("numa", r.NUMASweepTable),
		tableJob("replication", func() (*experiment.Table, error) {
			return experiment.ReplicationTable(nil)
		}),
		tableJob("classes", func() (*experiment.Table, error) {
			// The standard suite under every paper policy plus the GTS/EAS
			// extensions (Linux joins implicitly as the reference).
			return r.ClassTable(ctx, nil, nil, []string{
				experiment.SchedWASH, experiment.SchedCOLAB,
				experiment.SchedGTS, experiment.SchedEAS,
			})
		}),
		tableJob("detail", r.DetailTable),
	}

	var names []string
	switch {
	case *fig != 0:
		names = []string{fmt.Sprintf("fig%d", *fig)}
	case *summary:
		names = []string{"summary"}
	case *ablation:
		names = []string{"ablation"}
	case *delta:
		names = []string{"delta"}
	case *energy:
		names = []string{"energy"}
	case *trigear:
		names = []string{"trigear"}
	case *oppsweep:
		names = []string{"oppsweep"}
	case *numa:
		names = []string{"numa"}
	case *replication:
		names = []string{"replication"}
	case *classes:
		names = []string{"classes"}
	case *detail:
		names = []string{"detail"}
	case *tables:
		names = []string{"table2", "table3", "table4"}
	default:
		for _, j := range all {
			// replication is opt-in (5x the matrix cost); detail is opt-in
			// (104 rows of output); classes is opt-in (its own suite sweep).
			if j.name != "replication" && j.name != "detail" && j.name != "classes" {
				names = append(names, j.name)
			}
		}
	}

	if *csvPath != "" {
		cells, err := r.RunMatrixContext(ctx, workload.Compositions(), cpu.EvaluatedConfigs(),
			[]string{experiment.SchedWASH, experiment.SchedCOLAB})
		if err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		if err := experiment.WriteCellsCSV(f, cells); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		fmt.Fprintf(stderr, "colab-bench: wrote %s\n", *csvPath)
	}

	ran := 0
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cancelled before %s: %w", n, err)
		}
		for _, j := range all {
			if j.name != n {
				continue
			}
			out, err := j.run()
			if err != nil {
				return fmt.Errorf("%s: %w", j.name, err)
			}
			fmt.Fprintln(stdout, out)
			ran++
		}
	}
	if ran == 0 {
		return fmt.Errorf("nothing selected (unknown figure?)")
	}
	fmt.Fprintf(stderr, "colab-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
