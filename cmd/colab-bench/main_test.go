package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), []string{"-tables"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunTriGear(t *testing.T) {
	if testing.Short() {
		t.Skip("tri-gear table is not -short")
	}
	var out, errb strings.Builder
	if err := run(context.Background(), []string{"-trigear"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Tri-gear extension", "2B2M2S", "colab", "eas"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var out, errb strings.Builder
	if err := run(context.Background(), []string{"-fig", "99"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "nothing selected") {
		t.Errorf("want nothing-selected error, got %v", err)
	}
}

func TestRunDeltaCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errb strings.Builder
	if err := run(ctx, []string{"-delta"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("cancelled -delta must surface the cancellation, got %v", err)
	}
}
