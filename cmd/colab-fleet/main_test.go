package main

import (
	"bytes"
	"context"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePort reserves a loopback port for a mode under test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	return ln.Addr().String()
}

// TestLocalModeWritesCSV pins the in-process path: NDJSON on stdout, CSV
// at -o, exit 0.
func TestLocalModeWritesCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "local.csv")
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-mode", "local", "-workload", "Sync-1", "-policy", "linux", "-seed", "1", "-o", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if lines := strings.Split(strings.TrimSpace(stdout.String()), "\n"); len(lines) != 1 {
		t.Errorf("stdout has %d NDJSON lines, want 1:\n%s", len(lines), stdout.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(string(data)), "\n"); len(lines) != 2 {
		t.Errorf("csv has %d lines, want header + 1 cell:\n%s", len(lines), data)
	}
}

// TestFleetModeMatchesLocalMode is the binary-level guarantee the CI
// smoke job scripts against: a coordinator with two workers produces a
// CSV byte-identical to -mode local.
func TestFleetModeMatchesLocalMode(t *testing.T) {
	dir := t.TempDir()
	sweep := []string{"-workload", "Sync-1,Comp-1", "-policy", "linux,wash", "-seed", "1,2"}

	localCSV := filepath.Join(dir, "local.csv")
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), append([]string{"-mode", "local", "-o", localCSV}, sweep...), &stdout, &stderr); code != 0 {
		t.Fatalf("local run exit %d: %s", code, stderr.String())
	}

	coordAddr := freePort(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		go run(ctx, []string{
			"-mode", "worker", "-addr", freePort(t),
			"-coordinator", "http://" + coordAddr, "-heartbeat", "100ms",
		}, new(bytes.Buffer), new(bytes.Buffer))
	}
	fleetCSV := filepath.Join(dir, "fleet.csv")
	stdout.Reset()
	stderr.Reset()
	code := run(ctx, append([]string{
		"-mode", "coordinator", "-addr", coordAddr, "-min-workers", "2", "-o", fleetCSV,
	}, sweep...), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("coordinator exit %d: %s", code, stderr.String())
	}
	want, err := os.ReadFile(localCSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(fleetCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet csv diverges from local csv:\nlocal:\n%s\nfleet:\n%s", want, got)
	}
	if lines := strings.Split(strings.TrimSpace(stdout.String()), "\n"); len(lines) != 8 {
		t.Errorf("coordinator streamed %d NDJSON lines, want 8", len(lines))
	}
}

// TestWorkerModeDrainsOnCancel pins graceful shutdown: cancelling the
// context (the SIGTERM path) exits 0 promptly.
func TestWorkerModeDrainsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{
			"-mode", "worker", "-addr", freePort(t),
			"-coordinator", "http://127.0.0.1:1", "-drain-timeout", "2s",
		}, new(bytes.Buffer), new(bytes.Buffer))
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("worker exit %d after graceful shutdown, want 0", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not exit within the drain budget")
	}
}

// TestCompactFlag pins the journal-housekeeping mode.
func TestCompactFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.ndjson")
	lines := `{"key":"a","h_antt":1,"h_stp":2}
{"key":"b","h_antt":3,"h_stp":4}
{"key":"a","h_antt":1,"h_stp":2}
{"key":"c","h_antt":5`
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run(context.Background(), []string{"-compact", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "kept 2") || !strings.Contains(stdout.String(), "dropped 1") {
		t.Errorf("compact report %q, want kept 2 / dropped 1", stdout.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Errorf("compacted journal has %d lines, want 2:\n%s", n, data)
	}
}

// TestBadFlagsFailCleanly pins the error paths to non-zero exits with
// messages on stderr.
func TestBadFlagsFailCleanly(t *testing.T) {
	for _, tc := range [][]string{
		{"-mode", "nope"},
		{"-mode", "local"},  // no workloads
		{"-mode", "worker"}, // no coordinator
		{"-mode", "local", "-workload", "Sync-1", "-machine", "9B9S"},
		{"-mode", "local", "-workload", "Sync-1", "-seed", "x"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), tc, &stdout, &stderr); code == 0 {
			t.Errorf("args %v exited 0, want failure", tc)
		} else if stderr.Len() == 0 {
			t.Errorf("args %v failed silently", tc)
		}
	}
}
