// Command colab-fleet runs one experiment sweep across many hosts: a
// coordinator process deals deterministic shard assignments of the sweep
// to registered worker daemons over HTTP, streams their per-cell results
// back, and reassembles the union — byte-identical to the same sweep run
// unsharded in one process (-mode local proves it). Workers that die
// mid-shard are survived: the shard is retried on a surviving worker
// with the completed cells shipped along as a checkpoint journal, so
// nothing already computed is recomputed.
//
// Usage:
//
//	# one worker per host, pointing at the coordinator
//	colab-fleet -mode worker -addr :8081 -coordinator http://coord:8080
//
//	# the coordinator: waits for workers, runs the sweep, streams NDJSON
//	colab-fleet -mode coordinator -addr :8080 -min-workers 2 \
//	    -workload Sync-1,Comp-1 -policy linux,wash -seed 1,2 -o fleet.csv
//
//	# the same sweep in-process, for comparison or small runs
//	colab-fleet -mode local -workload Sync-1,Comp-1 -policy linux,wash \
//	    -seed 1,2 -o local.csv
//
//	# housekeeping: drop duplicate records from a checkpoint journal
//	colab-fleet -compact sweep.ndjson
//
// Cells stream to stdout as NDJSON (the colab-serve line format) in the
// sweep's deterministic cross-product order; -o additionally writes the
// final result set as CSV. Workers exit gracefully on SIGTERM, draining
// in-flight shards.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	colab "colab"
	"colab/internal/cpu"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, runs the selected mode,
// returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("colab-fleet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode        = fs.String("mode", "local", "coordinator, worker, or local (run the sweep in-process)")
		addr        = fs.String("addr", ":8080", "listen address (coordinator and worker modes)")
		coordinator = fs.String("coordinator", "", "coordinator base URL to register with (worker mode)")
		advertise   = fs.String("advertise", "", "externally reachable URL of this worker (default: derived from -addr on 127.0.0.1)")
		heartbeat   = fs.Duration("heartbeat", time.Second, "worker heartbeat interval")
		cacheLimit  = fs.Int("cache-limit", 0, "bound the worker cell cache to this many cells, LRU-evicted (0 = unbounded)")
		drain       = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget on SIGTERM")
		compact     = fs.String("compact", "", "compact the checkpoint journal at this path and exit")

		workloads  = fs.String("workload", "", "comma-separated workloads: scenario names or grammar specs")
		machines   = fs.String("machine", "", "comma-separated named machine shapes (default 2B2S)")
		policies   = fs.String("policy", "", "comma-separated policies (default: the paper policies)")
		seeds      = fs.String("seed", "", "comma-separated workload seeds (default 1)")
		workers    = fs.Int("workers", 0, "per-process run parallelism (0 = GOMAXPROCS)")
		shards     = fs.Int("shards", 0, "shard count (0 = one shard per live worker)")
		minWorkers = fs.Int("min-workers", 1, "wait for this many registered workers before dispatching")
		output     = fs.String("o", "", "write the final result set as CSV to this path")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *compact != "" {
		kept, dropped, err := colab.CompactJournal(*compact)
		if err != nil {
			fmt.Fprintf(stderr, "colab-fleet: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "compacted %s: kept %d records, dropped %d\n", *compact, kept, dropped)
		return 0
	}
	var err error
	switch *mode {
	case "worker":
		err = runWorker(ctx, stderr, *addr, *coordinator, *advertise, *heartbeat, *drain, *cacheLimit)
	case "coordinator", "local":
		var opts []colab.ExperimentOption
		if opts, err = sweepOptions(*workloads, *machines, *policies, *seeds, *workers); err == nil {
			if *mode == "coordinator" {
				err = runCoordinator(ctx, stdout, stderr, *addr, *shards, *minWorkers, *output, opts)
			} else {
				err = runSweep(ctx, stdout, *output, opts)
			}
		}
	default:
		err = fmt.Errorf("unknown -mode %q (coordinator, worker, or local)", *mode)
	}
	if err != nil {
		fmt.Fprintf(stderr, "colab-fleet: %v\n", err)
		return 1
	}
	return 0
}

// sweepOptions translates the sweep flags into session options, with the
// same spellings colab-serve accepts.
func sweepOptions(workloads, machines, policies, seeds string, workers int) ([]colab.ExperimentOption, error) {
	split := func(s string) []string {
		var out []string
		for _, part := range strings.Split(s, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
		return out
	}
	w := split(workloads)
	if len(w) == 0 {
		return nil, fmt.Errorf("at least one -workload is required (a registered name or a scenario-grammar spec)")
	}
	opts := []colab.ExperimentOption{colab.WithWorkloads(w...)}
	for _, name := range split(machines) {
		cfg, ok := cpu.ConfigByName(name)
		if !ok {
			known := make([]string, 0, 4)
			for _, c := range cpu.NamedConfigs() {
				known = append(known, c.Name)
			}
			return nil, fmt.Errorf("unknown machine %q (known: %s)", name, strings.Join(known, ", "))
		}
		opts = append(opts, colab.WithMachine(cfg))
	}
	if p := split(policies); len(p) > 0 {
		opts = append(opts, colab.WithPolicies(p...))
	}
	for _, raw := range split(seeds) {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("seed %q is not an unsigned integer", raw)
		}
		opts = append(opts, colab.WithSeeds(n))
	}
	if workers > 0 {
		opts = append(opts, colab.WithWorkers(workers))
	}
	return opts, nil
}

// runWorker serves a worker daemon until ctx is cancelled (SIGTERM),
// then drains in-flight shards gracefully.
func runWorker(ctx context.Context, stderr io.Writer, addr, coordinator, advertise string, heartbeat, drain time.Duration, cacheLimit int) error {
	if coordinator == "" {
		return fmt.Errorf("worker mode needs -coordinator")
	}
	cache := colab.NewCellCache(colab.WithCellCacheLimit(cacheLimit))
	w := colab.NewFleetWorker(cache)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if advertise == "" {
		advertise = "http://" + hostPort(ln.Addr().String(), addr)
	}
	srv := &http.Server{Handler: w}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	go colab.RegisterFleetWorker(ctx, nil, coordinator, advertise, heartbeat)
	fmt.Fprintf(stderr, "colab-fleet: worker %s registering with %s\n", advertise, coordinator)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "colab-fleet: worker draining (up to %s)\n", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// hostPort renders a dialable host:port for a listener: a wildcard-host
// bind (":8081") advertises as loopback, since a worker that cannot name
// its own host should at least be reachable from a local coordinator.
func hostPort(bound, requested string) string {
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return requested
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// runCoordinator serves the coordinator, waits for the fleet to form,
// runs the sweep across it, and streams/writes the results.
func runCoordinator(ctx context.Context, stdout, stderr io.Writer, addr string, shards, minWorkers int, output string, opts []colab.ExperimentOption) error {
	f := colab.NewFleet(colab.FleetOptions{Shards: shards})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: f}
	defer srv.Close()
	go srv.Serve(ln)
	fmt.Fprintf(stderr, "colab-fleet: coordinator on %s waiting for %d worker(s)\n", ln.Addr(), minWorkers)
	if err := f.WaitWorkers(ctx, minWorkers); err != nil {
		return fmt.Errorf("waiting for %d worker(s): %w", minWorkers, err)
	}
	return runSweep(ctx, stdout, output, append(opts, colab.WithFleet(f)))
}

// cellLine is the NDJSON stream format, shared with colab-serve.
type cellLine struct {
	Workload string  `json:"workload"`
	Machine  string  `json:"machine"`
	Policy   string  `json:"policy"`
	Seed     uint64  `json:"seed"`
	HANTT    float64 `json:"h_antt"`
	HSTP     float64 `json:"h_stp"`
	CellKey  string  `json:"cell_key"`
	Cached   bool    `json:"cached"`
}

// runSweep executes the session (fleet-backed or local, depending on
// opts), streaming cells to stdout as NDJSON and writing CSV to output.
func runSweep(ctx context.Context, stdout io.Writer, output string, opts []colab.ExperimentOption) error {
	enc := json.NewEncoder(stdout)
	opts = append(opts, colab.WithObserver(func(c colab.ExperimentResult) {
		enc.Encode(cellLine{
			Workload: c.Run.Workload,
			Machine:  c.Run.Machine,
			Policy:   c.Run.Policy,
			Seed:     c.Run.Seed,
			HANTT:    c.Score.HANTT,
			HSTP:     c.Score.HSTP,
			CellKey:  c.Key.String(),
			Cached:   c.Cached,
		})
		if f, ok := stdout.(interface{ Sync() error }); ok {
			f.Sync()
		}
	}))
	res, err := colab.NewExperiment(opts...).Run(ctx)
	if err != nil {
		return err
	}
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			return err
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
