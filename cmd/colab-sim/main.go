// Command colab-sim runs one workload on one simulated machine under one
// scheduler and prints per-application timing and machine utilisation.
// Any policy in the registry — built-in or registered by a library user —
// is selectable by name, as is any pipeline composition in the stage
// grammar ("<name>.<slot>+...", slots labeler/allocator/selector/governor;
// colab-workloads lists the stage vocabulary). The -workload flag takes
// any scenario: a registered name (Table 4 indexes, user scenarios) or a
// scenario-grammar spec, including open-system arrivals (colab-workloads
// -describe prints how a spec parses).
//
// Usage:
//
//	colab-sim -workload Sync-2 -config 2B2S -sched colab
//	colab-sim -workload Sync-2 -config 2B2S -sched colab -score
//	colab-sim -workload "ferret:4+bodytrack:8" -sched colab
//	colab-sim -workload "ferret:4@arrive=poisson(5ms)+blackscholes:4" -sched colab -score
//	colab-sim -workload Sync-2 -sched colab.labeler+wash.selector
//	colab-sim -bench ferret -threads 4 -config 2B2M2S -sched wash
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	colab "colab"
	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/kernel"
	"colab/internal/task"
	"colab/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "", "scenario: a registered name (e.g. Sync-2) or a grammar spec (e.g. \"ferret:4+bodytrack:8@arrive=poisson(5ms)\")")
	bench := fs.String("bench", "", "single benchmark name instead of a composition")
	threads := fs.Int("threads", 4, "thread count for -bench")
	cfgName := fs.String("config", "2B2S", "hardware config: "+configNames())
	sched := fs.String("sched", "colab", "scheduler: "+strings.Join(colab.Policies(), ", ")+
		", or a stage composition like colab.labeler+wash.selector")
	seed := fs.Uint64("seed", 1, "workload generation seed")
	littleFirst := fs.Bool("little-first", false, "order little cores before big cores")
	trace := fs.Bool("trace", false, "print the scheduling event trace to stderr")
	score := fs.Bool("score", false, "also print auto-baselined H_ANTT/H_STP via the session API (-workload only)")
	listMachines := fs.Bool("list-machines", false, "list the named machine configs with their socket/LLC-domain layout")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *listMachines {
		for _, c := range cpu.NamedConfigs() {
			fmt.Fprintf(stdout, "%s (%d cores)\n", c.Name, len(c.Kinds))
			for _, line := range c.DescribeTopology() {
				fmt.Fprintln(stdout, "  "+line)
			}
		}
		return nil
	}

	base, ok := cpu.ConfigByName(*cfgName)
	if !ok {
		return fmt.Errorf("unknown config %q (want %s)", *cfgName, configNames())
	}
	cfg := base.Ordered(!*littleFirst)
	if *score && (*bench != "" || *wl == "") {
		return fmt.Errorf("-score needs -workload (single benchmarks have no mix score)")
	}

	var (
		w   *task.Workload
		err error
	)
	switch {
	case *bench != "":
		w, err = workload.SingleProgram(*bench, *threads, *seed)
	case *wl != "":
		var spec workload.Spec
		spec, err = workload.ResolveSpec(*wl)
		if err != nil {
			return err
		}
		// The machine's aggregate capacity feeds machine-dependent load
		// generators (load=util); every other spec ignores it.
		w, err = spec.BuildFor(*seed, base.AggregateCapacity())
	default:
		return fmt.Errorf("one of -workload or -bench is required")
	}
	if err != nil {
		return err
	}

	runner, err := experiment.NewRunner(*seed)
	if err != nil {
		return err
	}
	s, err := runner.NewScheduler(*sched)
	if err != nil {
		return err
	}
	m, err := kernel.NewMachine(cfg, s, w, kernel.Params{})
	if err != nil {
		return err
	}
	if *trace {
		m.SetTracer(kernel.WriteTracer(stderr))
	}
	res, err := m.Run()
	if err != nil {
		return err
	}
	res.WriteSummary(stdout)

	if *score {
		sres, err := colab.NewExperiment(
			colab.WithWorkloads(*wl),
			colab.WithMachine(base),
			colab.WithPolicies(*sched),
			colab.WithSeeds(*seed),
		).Run(context.Background())
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, "\nsession score (both core orders, big-only-alone baselines):")
		if err := sres.WriteTable(stdout); err != nil {
			return err
		}
	}
	return nil
}

func configNames() string {
	var out []string
	for _, c := range cpu.NamedConfigs() {
		out = append(out, c.Name)
	}
	return strings.Join(out, ", ")
}
