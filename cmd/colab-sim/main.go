// Command colab-sim runs one workload on one simulated machine under one
// scheduler and prints per-application timing and machine utilisation.
//
// Usage:
//
//	colab-sim -workload Sync-2 -config 2B2S -sched colab
//	colab-sim -bench ferret -threads 4 -config 2B2S -sched wash
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/kernel"
	"colab/internal/task"
	"colab/internal/workload"
)

func main() {
	wl := flag.String("workload", "", "Table 4 composition index (e.g. Sync-2, Rand-7)")
	bench := flag.String("bench", "", "single benchmark name instead of a composition")
	threads := flag.Int("threads", 4, "thread count for -bench")
	cfgName := flag.String("config", "2B2S", "hardware config: 2B2S, 2B4S, 4B2S, 4B4S")
	sched := flag.String("sched", "colab", "scheduler: linux, wash, colab, gts, colab-noscale, ...")
	seed := flag.Uint64("seed", 1, "workload generation seed")
	littleFirst := flag.Bool("little-first", false, "order little cores before big cores")
	trace := flag.Bool("trace", false, "print the scheduling event trace to stderr")
	flag.Parse()

	cfg, ok := cpu.ConfigByName(*cfgName)
	if !ok {
		fail("unknown config %q (want 2B2S, 2B4S, 4B2S or 4B4S)", *cfgName)
	}
	cfg = cpu.NewConfig(cfg.NumBig(), cfg.NumLittle(), !*littleFirst)

	var (
		w   *task.Workload
		err error
	)
	switch {
	case *bench != "":
		w, err = workload.SingleProgram(*bench, *threads, *seed)
	case *wl != "":
		comp, ok := workload.CompositionByIndex(*wl)
		if !ok {
			fail("unknown workload %q; known: %s", *wl, strings.Join(compositionIndexes(), ", "))
		}
		w, err = comp.Build(*seed)
	default:
		fail("one of -workload or -bench is required")
	}
	if err != nil {
		fail("%v", err)
	}

	runner, err := experiment.NewRunner(*seed)
	if err != nil {
		fail("%v", err)
	}
	s, err := runner.NewScheduler(*sched)
	if err != nil {
		fail("%v", err)
	}
	m, err := kernel.NewMachine(cfg, s, w, kernel.Params{})
	if err != nil {
		fail("%v", err)
	}
	if *trace {
		m.SetTracer(kernel.WriteTracer(os.Stderr))
	}
	res, err := m.Run()
	if err != nil {
		fail("%v", err)
	}
	res.WriteSummary(os.Stdout)
}

func compositionIndexes() []string {
	var out []string
	for _, c := range workload.Compositions() {
		out = append(out, c.Index)
	}
	return out
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "colab-sim: "+format+"\n", args...)
	os.Exit(1)
}
