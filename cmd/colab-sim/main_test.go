package main

import (
	"strings"
	"testing"
)

func TestRunWorkload(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "Comp-1", "-config", "2B2S", "-sched", "linux"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"workload Comp-1", "scheduler linux", "config 2B2S", "cpu0(big)", "cpu3(little)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

// -list-machines prints every named config with its socket/LLC-domain
// layout (flat machines report the single implicit domain).
func TestListMachines(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-list-machines"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"2B2S (4 cores)",
		"topology: flat (4 cores, one implicit LLC domain)",
		"2x32B32M64S (256 cores)",
		"topology: 2 sockets, 4 LLC domains, migration cost 8000 cycles/hop",
		"socket 1 / domain 3: cores 192-255 (64S)",
		"4x16B16S (128 cores)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

// A NUMA-palette workload runs end to end by name, including the suite's
// memory-churn member.
func TestRunNUMAPaletteSuiteMember(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "memory-churn", "-config", "2x2B2S", "-sched", "colab"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"workload memory-churn", "config 2x2B2S", "cpu7(little)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunTriGearBench(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-bench", "radix", "-threads", "2", "-config", "2B2M2S", "-sched", "colab"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"config 2B2M2S", "cpu2(medium)", "cpu5(little)"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

// The -workload flag accepts the scenario grammar end to end, including
// open-system arrivals (the arrival column appears in the summary).
func TestRunScenarioGrammar(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "radix:2+fft:2@arrive=60ms", "-config", "2B2S", "-sched", "linux"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"workload radix:2+fft:2@arrive=60ms", "arrival", "60.000ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
	if err := run([]string{"-workload", "radix:2@arrive=bogus()"}, &out, &errb); err == nil {
		t.Error("bad arrival spec must error")
	}
	if err := run([]string{"-workload", "no-such-workload"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "scenarios:") {
		t.Errorf("unknown workload must list registries, got %v", err)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err == nil {
		t.Error("want error without -workload/-bench")
	}
	if err := run([]string{"-workload", "Sync-2", "-config", "9B9S"}, &out, &errb); err == nil || !strings.Contains(err.Error(), "unknown config") {
		t.Errorf("want unknown-config error, got %v", err)
	}
	if err := run([]string{"-bogus"}, &out, &errb); err == nil {
		t.Error("want flag parse error for -bogus")
	}
}

func TestRunScoreViaSession(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "Comp-1", "-sched", "linux", "-score"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"session score", "H_ANTT", "Comp-1"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
	if err := run([]string{"-bench", "radix", "-score"}, &out, &errb); err == nil {
		t.Error("-score with -bench must error")
	}
	if err := run([]string{"-bench", "radix", "-workload", "Comp-1", "-score"}, &out, &errb); err == nil {
		t.Error("-score with -bench taking precedence over -workload must error, not mislabel")
	}
}

func TestRunUnknownSchedListsPolicies(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-workload", "Comp-1", "-sched", "bogus"}, &out, &errb)
	if err == nil {
		t.Fatal("unknown scheduler must error")
	}
	for _, want := range []string{"bogus", "linux", "colab-dvfs"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-sched error misses %q: %v", want, err)
		}
	}
}

// A stage composition runs end-to-end through -sched, and unknown stages
// inside one error with the slot's registered names.
func TestRunStageComposition(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-workload", "Comp-1", "-sched", "colab.labeler+wash.selector"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	if !strings.Contains(out.String(), "scheduler colab.labeler+wash.selector") {
		t.Errorf("summary misses the composition name:\n%s", out.String())
	}
	err := run([]string{"-workload", "Comp-1", "-sched", "colab.labeler+bogus.selector"}, &out, &errb)
	if err == nil {
		t.Fatal("unknown stage must error")
	}
	for _, want := range []string{"bogus", "registered selectors", "colab"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-stage error misses %q: %v", want, err)
		}
	}
}
