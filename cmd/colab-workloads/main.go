// Command colab-workloads prints the experiment inventory: Table 3
// (benchmark categorisation), Table 4 (multi-programmed compositions), the
// registered scheduling policies and the registered pipeline stages per
// slot (the composition vocabulary), plus an optional per-benchmark
// structural dump with per-tier speedups.
//
// Usage:
//
//	colab-workloads [-describe bench] [-tiers trigear]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	colab "colab"
	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/mathx"
	"colab/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-workloads: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-workloads", flag.ContinueOnError)
	fs.SetOutput(stderr)
	describe := fs.String("describe", "", "dump the structure of one benchmark instance")
	threads := fs.Int("threads", 4, "thread count for -describe")
	tierSet := fs.String("tiers", "biglittle", "tier palette for -describe speedups: biglittle or trigear")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *describe != "" {
		var tiers []cpu.Tier
		switch *tierSet {
		case "biglittle":
			tiers = cpu.DefaultTiers()
		case "trigear":
			tiers = cpu.TriGearTiers()
		default:
			return fmt.Errorf("unknown tier palette %q (want biglittle or trigear)", *tierSet)
		}
		b, ok := workload.ByName(*describe)
		if !ok {
			return fmt.Errorf("unknown benchmark %q", *describe)
		}
		app := b.Instantiate(0, *threads, mathx.NewRNG(42))
		fmt.Fprintf(stdout, "%s (%s): sync=%s comm/comp=%s threads=%d\n",
			b.Name, b.Suite, b.SyncRate, b.CommComp, app.NumThreads())
		for _, t := range app.Threads {
			var speedups []string
			for _, tier := range tiers[1:] { // base tier is 1.0 by definition
				speedups = append(speedups, fmt.Sprintf("%s=%.2f", tier.Name, t.Profile.SpeedupOn(tier)))
			}
			fmt.Fprintf(stdout, "  %-10s ops=%-5d work=%6.1fms speedup{%s}\n",
				t.Name, len(t.Program), t.Program.TotalWork()/1e6, strings.Join(speedups, " "))
		}
		return nil
	}
	fmt.Fprint(stdout, experiment.Table3())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, experiment.Table4())
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "== registered scheduling policies ==")
	fmt.Fprintln(stdout, strings.Join(colab.Policies(), ", "))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "== registered pipeline stages (compose with \"<name>.<slot>+...\") ==")
	for _, slot := range colab.StageSlots() {
		fmt.Fprintf(stdout, "%-10s %s\n", slot, strings.Join(colab.StageNames(slot), ", "))
	}
	fmt.Fprintln(stdout, "e.g. -sched colab.labeler+wash.selector+colab.governor; omitted allocator/selector default to linux")
	return nil
}
