// Command colab-workloads prints the experiment inventory: Table 3
// (benchmark categorisation), Table 4 (multi-programmed compositions), the
// registered benchmarks and scenarios (the workload vocabulary), the
// registered scheduling policies and the registered pipeline stages per
// slot (the policy-composition vocabulary). -describe takes a benchmark
// name (structural dump with per-tier speedups) or any scenario-grammar
// spec (parsed composition: terms, seeds, arrival processes, expansion).
//
// Usage:
//
//	colab-workloads [-describe bench-or-spec] [-tiers trigear]
//	colab-workloads -describe "Sync-2@seed=7"
//	colab-workloads -describe "ferret:4@arrive=poisson(5ms)+blackscholes:4"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	colab "colab"
	"colab/internal/cpu"
	"colab/internal/experiment"
	"colab/internal/mathx"
	"colab/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "colab-workloads: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("colab-workloads", flag.ContinueOnError)
	fs.SetOutput(stderr)
	describe := fs.String("describe", "", "dump one benchmark's structure, or print how a scenario-grammar spec parses")
	threads := fs.Int("threads", 4, "thread count for a benchmark -describe")
	tierSet := fs.String("tiers", "biglittle", "tier palette for -describe speedups: biglittle or trigear")
	suite := fs.Bool("suite", false, "list the standard scenario suite with canonical grammar strings")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *suite {
		fmt.Fprintln(stdout, "== standard scenario suite (runnable by name everywhere workloads are named) ==")
		for _, s := range colab.StandardSuite() {
			fmt.Fprintf(stdout, "%-18s class=%-12s machine=%-12s %s\n", s.Name, s.Class, s.Machine, s.Description)
			fmt.Fprintf(stdout, "%-18s %s\n", "", s.Spec.Canonical())
		}
		return nil
	}

	if *describe != "" {
		var tiers []cpu.Tier
		switch *tierSet {
		case "biglittle":
			tiers = cpu.DefaultTiers()
		case "trigear":
			tiers = cpu.TriGearTiers()
		default:
			return fmt.Errorf("unknown tier palette %q (want biglittle or trigear)", *tierSet)
		}
		b, ok := workload.ByName(*describe)
		if !ok {
			// Named machine shapes describe their socket/LLC-domain layout.
			if cfg, okc := cpu.ConfigByName(*describe); okc {
				return describeMachine(stdout, cfg)
			}
			// Not a bare benchmark or machine: describe the parsed spec.
			return describeSpec(stdout, *describe)
		}
		app, err := b.Instantiate(0, *threads, mathx.NewRNG(42))
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s (%s): sync=%s comm/comp=%s threads=%d\n",
			b.Name, b.Suite, b.SyncRate, b.CommComp, app.NumThreads())
		for _, t := range app.Threads {
			var speedups []string
			for _, tier := range tiers[1:] { // base tier is 1.0 by definition
				speedups = append(speedups, fmt.Sprintf("%s=%.2f", tier.Name, t.Profile.SpeedupOn(tier)))
			}
			fmt.Fprintf(stdout, "  %-10s ops=%-5d work=%6.1fms speedup{%s}\n",
				t.Name, len(t.Program), t.Program.TotalWork()/1e6, strings.Join(speedups, " "))
		}
		return nil
	}
	fmt.Fprint(stdout, experiment.Table3())
	fmt.Fprintln(stdout)
	fmt.Fprint(stdout, experiment.Table4())
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "== registered benchmarks (compose with \"<name>:<threads>+...\") ==")
	fmt.Fprintln(stdout, strings.Join(colab.BenchmarkNames(), ", "))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "== registered scenarios ==")
	fmt.Fprintln(stdout, strings.Join(colab.ScenarioNames(), ", "))
	fmt.Fprintln(stdout, "e.g. -describe \"Sync-2@seed=7\" or \"ferret:4@arrive=poisson(5ms)\"; modifiers: @seed=<n>, @arrive=<dur|fixed|uniform|poisson|trace|tracefile>, @load=<util|closed|diurnal|burst>, @class=<label>")
	fmt.Fprintln(stdout, "standard suite: -suite lists "+strings.Join(workload.SuiteNames(), ", "))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "== registered scheduling policies ==")
	fmt.Fprintln(stdout, strings.Join(colab.Policies(), ", "))
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, "== registered pipeline stages (compose with \"<name>.<slot>+...\") ==")
	for _, slot := range colab.StageSlots() {
		fmt.Fprintf(stdout, "%-10s %s\n", slot, strings.Join(colab.StageNames(slot), ", "))
	}
	fmt.Fprintln(stdout, "e.g. -sched colab.labeler+wash.selector+colab.governor; omitted allocator/selector default to linux")
	return nil
}

// describeMachine prints a named config's tier palette and socket /
// LLC-domain layout.
func describeMachine(stdout io.Writer, cfg cpu.Config) error {
	var tiers []string
	for _, t := range cfg.Tiers() {
		tiers = append(tiers, t.Name)
	}
	fmt.Fprintf(stdout, "machine %s: %d cores, tiers %s\n", cfg.Name, len(cfg.Kinds), strings.Join(tiers, "/"))
	for _, line := range cfg.DescribeTopology() {
		fmt.Fprintln(stdout, line)
	}
	fmt.Fprintf(stdout, "fingerprint %s\n", cfg.Fingerprint())
	return nil
}

// describeSpec prints how a scenario-grammar spec parses: canonical form,
// per-term modifiers and the app-by-app expansion.
func describeSpec(stdout io.Writer, input string) error {
	spec, err := colab.ParseScenario(input)
	if err != nil {
		// A bare word is most likely a misspelled benchmark or machine
		// name: surface the registered machine inventory alongside the
		// parse error (benchmarks are listed by the bare command).
		if !strings.ContainsAny(input, ":+@(") {
			var known []string
			for _, c := range cpu.NamedConfigs() {
				known = append(known, c.Name)
			}
			return fmt.Errorf("%q is not a registered benchmark, machine, or scenario (machines: %s): %w",
				input, strings.Join(known, ", "), err)
		}
		return err
	}
	system := "closed (all apps admitted at t=0)"
	if spec.Open() {
		system = "open (apps arrive over time)"
	}
	fmt.Fprintf(stdout, "spec      %s\ncanonical %s\nsystem    %s\napps      %d\n",
		input, spec.Canonical(), system, spec.NumApps())
	if spec.Load.Kind != colab.LoadNone {
		fmt.Fprintf(stdout, "load      %s\n", spec.Load)
	}
	if spec.Class != "" {
		fmt.Fprintf(stdout, "class     %s\n", spec.Class)
	}
	appID := 0
	for ti, term := range spec.Terms {
		src := term.Source
		if src == "" {
			src = "-"
		}
		mods := ""
		if term.HasSeed {
			mods += fmt.Sprintf(" seed=%d", term.Seed)
		}
		if term.Arrival.Kind != colab.ArriveClosed {
			mods += fmt.Sprintf(" arrive=%s", term.Arrival)
		}
		if mods == "" {
			mods = " (unmodified)"
		}
		fmt.Fprintf(stdout, "term %d: source=%s%s\n", ti+1, src, mods)
		for _, a := range term.Apps {
			fmt.Fprintf(stdout, "  app %-3d %s:%d\n", appID, a.Bench, a.Threads)
			appID++
		}
	}
	return nil
}
