// Command colab-workloads prints the workload inventory: Table 3 (benchmark
// categorisation) and Table 4 (multi-programmed compositions), plus an
// optional per-benchmark structural dump.
//
// Usage:
//
//	colab-workloads [-describe bench]
package main

import (
	"flag"
	"fmt"
	"os"

	"colab/internal/experiment"
	"colab/internal/mathx"
	"colab/internal/workload"
)

func main() {
	describe := flag.String("describe", "", "dump the structure of one benchmark instance")
	threads := flag.Int("threads", 4, "thread count for -describe")
	flag.Parse()

	if *describe != "" {
		b, ok := workload.ByName(*describe)
		if !ok {
			fmt.Fprintf(os.Stderr, "colab-workloads: unknown benchmark %q\n", *describe)
			os.Exit(1)
		}
		app := b.Instantiate(0, *threads, mathx.NewRNG(42))
		fmt.Printf("%s (%s): sync=%s comm/comp=%s threads=%d\n",
			b.Name, b.Suite, b.SyncRate, b.CommComp, app.NumThreads())
		for _, t := range app.Threads {
			fmt.Printf("  %-10s ops=%-5d work=%6.1fms true-speedup=%.2f\n",
				t.Name, len(t.Program), t.Program.TotalWork()/1e6, t.Profile.TrueSpeedup())
		}
		return
	}
	fmt.Print(experiment.Table3())
	fmt.Println()
	fmt.Print(experiment.Table4())
}
