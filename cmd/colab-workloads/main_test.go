package main

import (
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Table 3", "Table 4", "blackscholes", "Rand-7"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunDescribeTriGear(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-describe", "ferret", "-threads", "3", "-tiers", "trigear"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"ferret", "medium=", "big="} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

// The inventory lists the workload registries, and -describe takes any
// scenario-grammar spec.
func TestRunListsWorkloadRegistries(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"registered benchmarks", "registered scenarios",
		"water_spatial", "Comp-4", "@arrive=",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunDescribeSpec(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-describe", "Sync-2@seed=7+ferret:4@arrive=poisson(5ms)"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"canonical Sync-2@seed=7+ferret:4@arrive=poisson(5ms)",
		"open (apps arrive over time)",
		"source=Sync-2 seed=7",
		"arrive=poisson(5ms)",
		"dedup:9", "fluidanimate:9", "ferret:4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-describe", "nosuchbench"}, &out, &errb); err == nil {
		t.Error("want error for unknown benchmark")
	}
	if err := run([]string{"-describe", "radix", "-tiers", "quadgear"}, &out, &errb); err == nil {
		t.Error("want error for unknown tier palette")
	}
}

// The inventory surfaces the pipeline-composition vocabulary: every slot
// with its registered stages.
func TestRunListsPipelineStages(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"registered pipeline stages",
		"labeler", "allocator", "selector", "governor",
		"colab.labeler+wash.selector",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}
