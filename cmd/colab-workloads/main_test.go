package main

import (
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"Table 3", "Table 4", "blackscholes", "Rand-7"} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunDescribeTriGear(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-describe", "ferret", "-threads", "3", "-tiers", "trigear"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{"ferret", "medium=", "big="} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

// The inventory lists the workload registries, and -describe takes any
// scenario-grammar spec.
func TestRunListsWorkloadRegistries(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"registered benchmarks", "registered scenarios",
		"water_spatial", "Comp-4", "@arrive=",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunDescribeSpec(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-describe", "Sync-2@seed=7+ferret:4@arrive=poisson(5ms)"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"canonical Sync-2@seed=7+ferret:4@arrive=poisson(5ms)",
		"open (apps arrive over time)",
		"source=Sync-2 seed=7",
		"arrive=poisson(5ms)",
		"dedup:9", "fluidanimate:9", "ferret:4",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	err := run([]string{"-describe", "nosuchbench"}, &out, &errb)
	if err == nil {
		t.Error("want error for unknown benchmark")
	} else if !strings.Contains(err.Error(), "machines:") || !strings.Contains(err.Error(), "2x2B2S") {
		t.Errorf("unknown-name error does not list registered machines: %v", err)
	}
	if err := run([]string{"-describe", "radix", "-tiers", "quadgear"}, &out, &errb); err == nil {
		t.Error("want error for unknown tier palette")
	}
}

// -describe takes a named machine shape and prints its tier palette and
// socket/LLC-domain layout.
func TestDescribeMachine(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-describe", "2x2B2S"}, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"machine 2x2B2S: 8 cores",
		"topology: 2 sockets, 2 LLC domains, migration cost 8000 cycles/hop",
		"socket 0 / domain 0: cores 0-3 (2B+2S)",
		"socket 1 / domain 1: cores 4-7 (2B+2S)",
		"fingerprint 2x2B2S#",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
	// Flat machines describe the single implicit domain.
	out.Reset()
	if err := run([]string{"-describe", "2B2S"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "topology: flat (4 cores, one implicit LLC domain)") {
		t.Errorf("flat describe drifted:\n%s", out.String())
	}
}

// -suite includes each member's machine hint.
func TestSuiteListsMachineHints(t *testing.T) {
	var out, errb strings.Builder
	if err := run([]string{"-suite"}, &out, &errb); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"memory-churn", "machine=2x2B2S", "class=memory"} {
		if !strings.Contains(s, want) {
			t.Errorf("suite listing misses %q:\n%s", want, s)
		}
	}
}

// The inventory surfaces the pipeline-composition vocabulary: every slot
// with its registered stages.
func TestRunListsPipelineStages(t *testing.T) {
	var out, errb strings.Builder
	if err := run(nil, &out, &errb); err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errb.String())
	}
	s := out.String()
	for _, want := range []string{
		"registered pipeline stages",
		"labeler", "allocator", "selector", "governor",
		"colab.labeler+wash.selector",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output misses %q:\n%s", want, s)
		}
	}
}
