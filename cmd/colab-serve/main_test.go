package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	colab "colab"
)

type statsReply struct {
	Requests    uint64           `json:"requests"`
	CellsServed uint64           `json:"cells_served"`
	Rejected    uint64           `json:"rejected"`
	Inflight    int64            `json:"inflight"`
	Cache       colab.CacheStats `json:"cache"`
}

func getStats(t *testing.T, ts *httptest.Server) statsReply {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s statsReply
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func runCells(t *testing.T, ts *httptest.Server, query string) []cellLine {
	t.Helper()
	resp, err := http.Get(ts.URL + "/run?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run?%s -> %s", query, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	var cells []cellLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var c cellLine
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		cells = append(cells, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return cells
}

// A sweep request streams one NDJSON object per cell in the sweep's
// deterministic cross-product order, and a second identical request is
// answered entirely from the shared cache.
func TestRunStreamsAndCaches(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()

	const query = "workload=Sync-1&policy=linux,wash&seed=1,2&workers=4"
	first := runCells(t, ts, query)
	if len(first) != 4 {
		t.Fatalf("got %d cells, want 4 (2 policies x 2 seeds)", len(first))
	}
	wantOrder := []struct {
		policy string
		seed   uint64
	}{{"linux", 1}, {"wash", 1}, {"linux", 2}, {"wash", 2}}
	for i, c := range first {
		if c.Policy != wantOrder[i].policy || c.Seed != wantOrder[i].seed {
			t.Errorf("cell %d is (%s, seed %d), want (%s, seed %d)",
				i, c.Policy, c.Seed, wantOrder[i].policy, wantOrder[i].seed)
		}
		if c.Workload != "Sync-1" || c.Machine == "" || c.CellKey == "" {
			t.Errorf("cell %d incomplete: %+v", i, c)
		}
		if c.Cached {
			t.Errorf("cold-cache cell %d claims cached", i)
		}
		if _, err := colab.ParseCellKey(c.CellKey); err != nil {
			t.Errorf("cell %d key %q does not parse: %v", i, c.CellKey, err)
		}
	}

	second := runCells(t, ts, query)
	if len(second) != len(first) {
		t.Fatalf("repeat request returned %d cells, want %d", len(second), len(first))
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("repeat cell %d recomputed", i)
		}
		want := first[i]
		want.Cached = true
		if second[i] != want {
			t.Errorf("repeat cell %d diverged: %+v vs %+v", i, second[i], first[i])
		}
	}

	s := getStats(t, ts)
	if s.Cache.Hits < uint64(len(second)) {
		t.Errorf("cache hits = %d after repeat request, want >= %d", s.Cache.Hits, len(second))
	}
	if s.Requests < 2 || s.CellsServed != uint64(len(first)+len(second)) {
		t.Errorf("counters %+v, want 2 requests and %d cells", s, len(first)+len(second))
	}
}

// The cache is content-addressed on canonical coordinates: a different
// spelling of the same scenario and policy composition hits it.
func TestCacheIsSpellingIndependent(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()

	a := runCells(t, ts, "workload="+
		"ferret:4%2Bbodytrack:8&policy=wash.labeler")
	b := runCells(t, ts, "workload="+
		"+ferret:4+%2B+bodytrack:8+&policy=linux.selector%2Bwash.labeler%2Blinux.allocator")
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("got %d and %d cells, want 1 each", len(a), len(b))
	}
	if a[0].CellKey != b[0].CellKey {
		t.Fatalf("spellings produced distinct keys:\n%s\n%s", a[0].CellKey, b[0].CellKey)
	}
	if !b[0].Cached {
		t.Error("respelled request missed the cache")
	}
	if a[0].HANTT != b[0].HANTT || a[0].HSTP != b[0].HSTP {
		t.Errorf("respelled scores diverged: %+v vs %+v", a[0], b[0])
	}
}

// Sharded requests against the service cover the sweep exactly once.
func TestShardedRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()

	const base = "workload=Sync-1&policy=linux,wash&seed=1,2"
	full := runCells(t, ts, base)
	seen := make(map[string]bool)
	total := 0
	for idx := 0; idx < 2; idx++ {
		cells := runCells(t, ts, base+"&shard_count=2&shard_index="+string(rune('0'+idx)))
		for _, c := range cells {
			if seen[c.CellKey] {
				t.Errorf("cell %s served by two shards", c.CellKey)
			}
			seen[c.CellKey] = true
		}
		total += len(cells)
	}
	if total != len(full) {
		t.Errorf("shards cover %d cells, want %d", total, len(full))
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()
	for _, tc := range []struct{ name, query string }{
		{"no workload", "policy=linux"},
		{"unknown machine", "workload=Sync-1&machine=8B8S"},
		{"bad seed", "workload=Sync-1&seed=minusone"},
		{"unknown workload", "workload=no-such-benchmark:4"},
		{"unknown policy", "workload=Sync-1&policy=no-such-policy"},
		{"bad shard", "workload=Sync-1&shard_index=5&shard_count=2"},
		{"bad workers", "workload=Sync-1&workers=0"},
	} {
		resp, err := http.Get(ts.URL + "/run?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: /run?%s -> %s, want 400", tc.name, tc.query, resp.Status)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz -> %s", resp.Status)
	}
}

// With -max-concurrent 1, a second sweep arriving while one streams is
// shed with 429 + Retry-After instead of queueing, and capacity frees as
// soon as the stream drains.
func TestMaxConcurrentSheds(t *testing.T) {
	s := newServer(serverOptions{maxConcurrent: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	var held sync.Once
	s.testHold = func() {
		// Only the first sweep holds; later requests run through.
		held.Do(func() { close(entered); <-release })
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/run?workload=Sync-1&policy=linux&seed=1")
		if err == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		firstDone <- err
	}()
	<-entered // the first sweep now provably holds the only slot

	second, err := http.Get(ts.URL + "/run?workload=Sync-1&policy=linux&seed=1")
	if err != nil {
		t.Fatal(err)
	}
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("concurrent request -> %s, want 429", second.Status)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	// Capacity released: the same request now streams.
	if cells := runCells(t, ts, "workload=Sync-1&policy=linux&seed=1"); len(cells) != 1 {
		t.Fatalf("post-drain request returned %d cells, want 1", len(cells))
	}
	if s := getStats(t, ts); s.Rejected != 1 || s.Inflight != 0 {
		t.Errorf("stats rejected=%d inflight=%d, want 1 and 0", s.Rejected, s.Inflight)
	}
}

// With -cache-limit, the cell cache evicts LRU cells past the bound and
// reports it on /stats.
func TestCacheLimitEvicts(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{cacheLimit: 2}))
	defer ts.Close()
	if cells := runCells(t, ts, "workload=Sync-1&policy=linux,wash&seed=1,2"); len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	s := getStats(t, ts)
	if s.Cache.Limit != 2 {
		t.Errorf("stats report cache limit %d, want 2", s.Cache.Limit)
	}
	if s.Cache.Cells > 2 {
		t.Errorf("cache holds %d cells over its limit of 2", s.Cache.Cells)
	}
	if s.Cache.Evictions == 0 {
		t.Error("4 cells through a 2-cell cache evicted nothing")
	}
}

// Cells carry their spec's @class= label, and ?classes=1 appends the
// per-class grouping as a trailer after the cell stream.
func TestRunClassColumnsAndGrouping(t *testing.T) {
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/run?workload=interactive-burst,memory-churn&policy=linux,wash&seed=1&classes=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/run -> %s", resp.Status)
	}
	var cells []cellLine
	var groups []classLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.Contains(sc.Text(), "geomean_h_antt") {
			var g classLine
			if err := json.Unmarshal(sc.Bytes(), &g); err != nil {
				t.Fatalf("bad class line %q: %v", sc.Text(), err)
			}
			groups = append(groups, g)
			continue
		}
		if len(groups) > 0 {
			t.Fatalf("cell line %q after the class trailer began", sc.Text())
		}
		var c cellLine
		if err := json.Unmarshal(sc.Bytes(), &c); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		cells = append(cells, c)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4 (2 workloads x 2 policies)", len(cells))
	}
	wantClass := map[string]string{"interactive-burst": "interactive", "memory-churn": "memory"}
	for _, c := range cells {
		if c.Class != wantClass[c.Workload] {
			t.Errorf("cell %s has class %q, want %q", c.Workload, c.Class, wantClass[c.Workload])
		}
	}
	if len(groups) != 4 {
		t.Fatalf("got %d class groups, want 4 (2 classes x 2 policies)", len(groups))
	}
	byKey := make(map[string]classLine)
	for _, g := range groups {
		byKey[g.Class+"/"+g.Policy] = g
	}
	for _, c := range cells {
		g, ok := byKey[c.Class+"/"+c.Policy]
		if !ok {
			t.Errorf("no class group for cell %s/%s", c.Class, c.Policy)
			continue
		}
		// One cell per (class, policy) here, so the geomean is the cell.
		if g.Cells != 1 || g.HANTT != c.HANTT || g.HSTP != c.HSTP {
			t.Errorf("group %s/%s = %+v, want the single cell %+v", c.Class, c.Policy, g, c)
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList([]string{"a, b", "", "c", " , d"})
	want := []string{"a", "b", "c", "d"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("splitList = %v, want %v", got, want)
	}
}

// The service resolves workloads by name on every request, so a spec
// that replays a local trace file is rejected with a message naming the
// offending term.
func TestTraceFileWorkloadsRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "arrivals.trace")
	if err := os.WriteFile(path, []byte("0\n5ms\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(serverOptions{}))
	defer ts.Close()
	spec := fmt.Sprintf("dedup:2*2@arrive=tracefile(%s)", path)
	resp, err := http.Get(ts.URL + "/run?workload=" + url.QueryEscape(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tracefile workload -> %s, want 400 (body %q)", resp.Status, body)
	}
	if !strings.Contains(string(body), "trace file") || !strings.Contains(string(body), "dedup") {
		t.Errorf("rejection does not name the trace-file term: %q", body)
	}
}
