// Command colab-serve exposes the experiment session API as an HTTP
// service: POST (or GET) a sweep spec — scenario-grammar workloads,
// policy-composition strings, named machine shapes, seeds — to /run and
// the per-cell scores stream back as NDJSON in the sweep's deterministic
// cross-product order, each line flushed as its cell completes.
//
// All requests share one content-addressed cell cache keyed by the
// canonical cell coordinates (see colab.CellKey): a repeated request —
// or any request overlapping an earlier one, however the workloads and
// policies were spelled — is answered from cache, and concurrent
// identical cells are computed once. /stats reports the cache counters.
//
// Usage:
//
//	colab-serve -addr :8080 -max-concurrent 8 -cache-limit 100000
//	curl 'localhost:8080/run?workload=Sync-1&policy=linux,colab&seed=1'
//	curl localhost:8080/stats
//
// -max-concurrent bounds simultaneous /run sweeps (excess requests get
// 429 with Retry-After rather than queueing unboundedly), -cache-limit
// bounds the cell cache with LRU eviction, and SIGTERM/SIGINT shut down
// gracefully: the listener closes, in-flight /run streams drain to
// completion (up to -drain-timeout), then the process exits 0.
//
// Endpoints:
//
//	GET/POST /run      stream one NDJSON object per cell (see cellLine);
//	                   cells carry the spec's @class= label, and with
//	                   ?classes=1 the stream ends with the per-class
//	                   grouping (one classLine per class x policy)
//	GET      /stats    cache and service counters, JSON
//	GET      /healthz  liveness probe
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	colab "colab"
	"colab/internal/cpu"
	"colab/internal/mathx"
	"colab/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "bound simultaneous /run sweeps; excess requests get 429 (0 = unbounded)")
	cacheLimit := flag.Int("cache-limit", 0, "bound the cell cache to this many cells, LRU-evicted (0 = unbounded)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget for in-flight streams")
	flag.Parse()
	s := newServer(serverOptions{maxConcurrent: *maxConcurrent, cacheLimit: *cacheLimit})
	srv := &http.Server{Addr: *addr, Handler: s}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "colab-serve: listening on %s\n", *addr)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "colab-serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "colab-serve: shutting down, draining in-flight streams (up to %s)\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		fmt.Fprintf(os.Stderr, "colab-serve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "colab-serve: drained, exiting")
}

// serverOptions configure the service: both zero values mean unbounded.
type serverOptions struct {
	maxConcurrent int
	cacheLimit    int
}

// server is the service state: one shared cell cache, the concurrency
// gate and the request counters. Its handler is safe for concurrent use.
type server struct {
	mux         *http.ServeMux
	cache       *colab.CellCache
	sem         chan struct{} // nil = unbounded
	requests    atomic.Uint64
	cellsServed atomic.Uint64
	rejected    atomic.Uint64
	inflight    atomic.Int64

	// testHold, when set, is called while a /run request holds its
	// concurrency slot — the tests' deterministic way to keep a sweep
	// in flight. Nil in production.
	testHold func()
}

func newServer(opts serverOptions) *server {
	s := &server{
		mux:   http.NewServeMux(),
		cache: colab.NewCellCache(colab.WithCellCacheLimit(opts.cacheLimit)),
	}
	if opts.maxConcurrent > 0 {
		s.sem = make(chan struct{}, opts.maxConcurrent)
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// cellLine is one streamed result: the cell's sweep coordinates, its
// scores, its canonical content address, and whether the cache (or a
// checkpoint journal) answered it. Class carries the workload spec's
// @class= label (empty for unclassified scenarios).
type cellLine struct {
	Workload string  `json:"workload"`
	Class    string  `json:"class,omitempty"`
	Machine  string  `json:"machine"`
	Policy   string  `json:"policy"`
	Seed     uint64  `json:"seed"`
	HANTT    float64 `json:"h_antt"`
	HSTP     float64 `json:"h_stp"`
	CellKey  string  `json:"cell_key"`
	Cached   bool    `json:"cached"`
}

// classLine is one row of the ?classes=1 trailer: the ClassTable grouping
// of the streamed cells, geomeaned per (class, policy) in first-seen
// stream order.
type classLine struct {
	Class  string  `json:"class"`
	Policy string  `json:"policy"`
	Cells  int     `json:"cells"`
	HANTT  float64 `json:"geomean_h_antt"`
	HSTP   float64 `json:"geomean_h_stp"`
}

// classLines folds the streamed cells into the per-class grouping.
func classLines(cells []cellLine) []classLine {
	type key struct{ class, policy string }
	var out []classLine
	groups := make(map[key][]cellLine)
	var order []key
	for _, c := range cells {
		class := c.Class
		if class == "" {
			class = "unclassified"
		}
		k := key{class, c.Policy}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		g := groups[k]
		antt := make([]float64, len(g))
		stp := make([]float64, len(g))
		for i, c := range g {
			antt[i], stp[i] = c.HANTT, c.HSTP
		}
		out = append(out, classLine{
			Class: k.class, Policy: k.policy, Cells: len(g),
			HANTT: mathx.GeoMean(antt), HSTP: mathx.GeoMean(stp),
		})
	}
	return out
}

// splitList flattens repeated and comma-separated query values into one
// trimmed list: ?policy=linux,wash&policy=colab is three policies.
func splitList(values []string) []string {
	var out []string
	for _, v := range values {
		for _, part := range strings.Split(v, ",") {
			if part = strings.TrimSpace(part); part != "" {
				out = append(out, part)
			}
		}
	}
	return out
}

// optionsFromQuery translates the request's query parameters into
// session options, plus the resolved workload-name -> @class= label map
// the NDJSON stream annotates cells with. Unknown machine names and
// malformed numbers are caught here; workload and policy spellings are
// validated by Run itself.
func (s *server) optionsFromQuery(q map[string][]string) ([]colab.ExperimentOption, map[string]string, error) {
	opts := []colab.ExperimentOption{colab.WithCellCache(s.cache)}
	workloads := splitList(q["workload"])
	if len(workloads) == 0 {
		return nil, nil, fmt.Errorf("at least one workload parameter is required (a registered name or a scenario-grammar spec)")
	}
	classOf := make(map[string]string)
	for _, w := range workloads {
		// Unresolvable workloads fall through: Run reports them with the
		// registered inventories.
		if spec, err := workload.ResolveSpec(w); err == nil {
			if terms := spec.TraceFiles(); len(terms) != 0 {
				return nil, nil, fmt.Errorf("workload %q replays the local trace file of term %q; the service resolves workloads by name, so inline the times with @arrive=trace(...)", w, terms[0])
			}
			classOf[spec.Name] = string(spec.Class)
		}
	}
	opts = append(opts, colab.WithWorkloads(workloads...))
	if names := splitList(q["machine"]); len(names) > 0 {
		var cfgs []colab.Config
		for _, name := range names {
			cfg, ok := cpu.ConfigByName(name)
			if !ok {
				known := make([]string, 0, 4)
				for _, c := range cpu.NamedConfigs() {
					known = append(known, c.Name)
				}
				return nil, nil, fmt.Errorf("unknown machine %q (known: %s)", name, strings.Join(known, ", "))
			}
			cfgs = append(cfgs, cfg)
		}
		opts = append(opts, colab.WithMachines(cfgs...))
	}
	if policies := splitList(q["policy"]); len(policies) > 0 {
		opts = append(opts, colab.WithPolicies(policies...))
	}
	if raw := splitList(q["seed"]); len(raw) > 0 {
		var seeds []uint64
		for _, v := range raw {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("seed %q is not an unsigned integer", v)
			}
			seeds = append(seeds, n)
		}
		opts = append(opts, colab.WithSeeds(seeds...))
	}
	if v := strings.TrimSpace(strings.Join(q["workers"], "")); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return nil, nil, fmt.Errorf("workers %q is not a positive integer", v)
		}
		opts = append(opts, colab.WithWorkers(n))
	}
	idxRaw, cntRaw := q["shard_index"], q["shard_count"]
	if len(idxRaw) > 0 || len(cntRaw) > 0 {
		idx, err1 := strconv.Atoi(strings.Join(idxRaw, ""))
		cnt, err2 := strconv.Atoi(strings.Join(cntRaw, ""))
		if err1 != nil || err2 != nil {
			return nil, nil, fmt.Errorf("shard_index and shard_count must be set together as integers")
		}
		opts = append(opts, colab.WithShard(idx, cnt))
	}
	return opts, classOf, nil
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
		return
	}
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			// At capacity: shed rather than queue, so latency stays bounded
			// and the client can retry or go elsewhere.
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "colab-serve: at capacity (-max-concurrent sweeps in flight), retry shortly", http.StatusTooManyRequests)
			return
		}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.testHold != nil {
		s.testHold()
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	opts, classOf, err := s.optionsFromQuery(r.Form)
	if err != nil {
		http.Error(w, "colab-serve: "+err.Error(), http.StatusBadRequest)
		return
	}
	wantClasses := false
	if v := strings.TrimSpace(strings.Join(r.Form["classes"], "")); v != "" && v != "0" && v != "false" {
		wantClasses = true
	}

	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	streamed := 0
	var collected []cellLine
	opts = append(opts, colab.WithObserver(func(c colab.ExperimentResult) {
		if streamed == 0 {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		streamed++
		s.cellsServed.Add(1)
		line := cellLine{
			Workload: c.Run.Workload,
			Class:    classOf[c.Run.Workload],
			Machine:  c.Run.Machine,
			Policy:   c.Run.Policy,
			Seed:     c.Run.Seed,
			HANTT:    c.Score.HANTT,
			HSTP:     c.Score.HSTP,
			CellKey:  c.Key.String(),
			Cached:   c.Cached,
		}
		if wantClasses {
			collected = append(collected, line)
		}
		enc.Encode(line)
		if flusher != nil {
			flusher.Flush()
		}
	}))
	if _, err := colab.NewExperiment(opts...).Run(r.Context()); err != nil {
		if streamed == 0 {
			// Nothing written yet: a bad spec (unknown workload or policy,
			// invalid shard coordinates) is still a clean 400.
			http.Error(w, "colab-serve: "+err.Error(), http.StatusBadRequest)
			return
		}
		// Mid-stream failure: the status line is gone, so report in-band.
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	if wantClasses {
		// The class trailer: the ClassTable grouping of the cells just
		// streamed, one NDJSON object per (class, policy) group.
		for _, cl := range classLines(collected) {
			enc.Encode(cl)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Requests    uint64           `json:"requests"`
		CellsServed uint64           `json:"cells_served"`
		Rejected    uint64           `json:"rejected"`
		Inflight    int64            `json:"inflight"`
		Cache       colab.CacheStats `json:"cache"`
	}{s.requests.Load(), s.cellsServed.Load(), s.rejected.Load(), s.inflight.Load(), s.cache.Stats()})
}
