package colab_test

import (
	"context"
	"strings"
	"testing"

	colab "colab"
)

// The zero Pipeline is plain CFS: it must build, run a workload to
// completion and carry a derived name.
func TestZeroPipelineIsCFS(t *testing.T) {
	s, err := colab.Pipeline{}.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Name(); got != "linux.allocator+linux.selector" {
		t.Fatalf("derived name = %q", got)
	}
	w, err := colab.BuildWorkload("Comp-1", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := colab.Run(colab.Config2B2S, s, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Apps {
		if a.Turnaround <= 0 {
			t.Fatalf("app %s unfinished", a.Name)
		}
	}
}

// Registry-built stages slot into a hand-assembled Pipeline: COLAB's
// labeler over the default CFS mechanics.
func TestPipelineFromRegistryStages(t *testing.T) {
	st, err := colab.NewStage(colab.SlotLabeler, "colab", colab.PolicyContext{})
	if err != nil {
		t.Fatal(err)
	}
	lab, ok := st.(colab.Labeler)
	if !ok {
		t.Fatalf("colab.labeler stage does not implement Labeler: %T", st)
	}
	s, err := colab.Pipeline{Name: "colab-over-cfs", Labeler: lab}.Scheduler()
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "colab-over-cfs" {
		t.Fatalf("name = %q", s.Name())
	}
	w, err := colab.BuildWorkload("Comp-1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := colab.Run(colab.Config2B2S, s, w); err != nil {
		t.Fatal(err)
	}
}

// countingLabeler is a minimal user-defined stage: it counts labeling
// passes and pins nothing.
type countingLabeler struct {
	pc     *colab.PipelineContext
	passes int
}

func (l *countingLabeler) Name() string { return "counting.labeler" }
func (l *countingLabeler) Start(pc *colab.PipelineContext) {
	l.pc = pc
	pc.Machine().Engine().After(colab.Millisecond, l.tick)
}
func (l *countingLabeler) tick() {
	if l.pc.Machine().Done() {
		return
	}
	l.passes++
	l.pc.Machine().Engine().After(colab.Millisecond, l.tick)
}
func (l *countingLabeler) Admit(t *colab.Thread)      {}
func (l *countingLabeler) ThreadDone(t *colab.Thread) {}

// A user stage registered with RegisterStage becomes addressable through
// the composition grammar everywhere a policy name is accepted.
func TestRegisterStageGrammarRoundtrip(t *testing.T) {
	var last *countingLabeler
	if err := colab.RegisterStage(colab.SlotLabeler, "counting", func(colab.PolicyContext) (colab.PipelineStage, error) {
		last = &countingLabeler{}
		return last, nil
	}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range colab.StageNames(colab.SlotLabeler) {
		if n == "counting" {
			found = true
		}
	}
	if !found {
		t.Fatalf("counting missing from StageNames: %v", colab.StageNames(colab.SlotLabeler))
	}
	s, err := colab.NewPolicy("counting.labeler+colab.selector", colab.PolicyContext{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := colab.BuildWorkload("Comp-1", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := colab.Run(colab.Config2B2S, s, w); err != nil {
		t.Fatal(err)
	}
	if last == nil || last.passes == 0 {
		t.Fatalf("user labeler never ticked (stage=%v)", last)
	}

	// Registration validation: grammar metacharacters and collisions.
	if err := colab.RegisterStage(colab.SlotLabeler, "counting", nil); err == nil {
		t.Error("nil factory must error")
	}
	if err := colab.RegisterStage(colab.SlotLabeler, "a.b", func(colab.PolicyContext) (colab.PipelineStage, error) {
		return &countingLabeler{}, nil
	}); err == nil {
		t.Error("dotted stage name must error")
	}
	if err := colab.RegisterStage("nosuchslot", "x", func(colab.PolicyContext) (colab.PipelineStage, error) {
		return &countingLabeler{}, nil
	}); err == nil {
		t.Error("unknown slot must error")
	}
}

// A cross-policy hybrid runs through the Experiment session by composition
// name, alongside its parents.
func TestExperimentAcceptsCompositionNames(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates full mixes; not -short")
	}
	const hybrid = "colab.labeler+wash.selector"
	res, err := colab.NewExperiment(
		colab.WithWorkloads("Comp-1"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("colab", hybrid),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	seen := map[string]bool{}
	for _, c := range res.Cells {
		seen[c.Run.Policy] = true
		if c.Score.HANTT <= 0 || c.Score.HSTP <= 0 {
			t.Fatalf("%s: degenerate score %+v", c.Run.Policy, c.Score)
		}
	}
	if !seen[hybrid] {
		t.Fatalf("hybrid cell missing: %v", seen)
	}
}

// Unknown stages inside compositions error with the slot's registered
// stage names, mirroring the unknown-policy behaviour.
func TestCompositionUnknownStageError(t *testing.T) {
	_, err := colab.NewPolicy("bogus.labeler+colab.selector", colab.PolicyContext{})
	if err == nil {
		t.Fatal("unknown labeler must error")
	}
	for _, wantSub := range []string{"bogus", "colab", "wash", "gts", "eas"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("error misses %q: %v", wantSub, err)
		}
	}
}

// The canonical compositions are exposed for every decomposable built-in.
func TestCanonicalCompositions(t *testing.T) {
	for _, name := range []string{"linux", "wash", "gts", "eas", "colab", "colab-dvfs"} {
		comp, ok := colab.CanonicalComposition(name)
		if !ok {
			t.Errorf("no canonical composition for %s", name)
			continue
		}
		if _, err := colab.NewPolicy(comp, colab.PolicyContext{}); err != nil {
			t.Errorf("canonical composition %q does not build: %v", comp, err)
		}
	}
	if _, ok := colab.CanonicalComposition("colab-noscale"); ok {
		t.Error("option-ablation variants must not claim a canonical composition")
	}
}
