package colab

import "colab/internal/experiment"

// CellKey is the canonical closed-form identity of one experiment cell:
// the canonical scenario-grammar form, the canonical policy (stage
// composition) name, the machine fingerprint (config name + structural
// digest), the workload seed and a digest of the normalised kernel
// parameters. Two cells with equal keys are guaranteed byte-identical, so
// CellKey is the single content address shared by baseline dedup inside a
// sweep, the checkpoint journal (WithCheckpoint) and the colab-serve cell
// cache (CellCache) — replacing the ad-hoc key strings those layers used
// to derive independently.
//
// CellKey is comparable; String() renders a stable one-line form (equal
// keys render identically across runs and processes) and ParseCellKey
// round-trips it exactly. Every cell of an Experiment's results carries
// its key (ExperimentResult.Key).
type CellKey = experiment.CellKey

// ParseCellKey parses a CellKey.String() rendering back into the key.
func ParseCellKey(s string) (CellKey, error) { return experiment.ParseCellKey(s) }

// CellCache is a concurrency-safe, content-addressed store of scored
// cells keyed by CellKey — the shared layer that lets repeated and
// overlapping experiment runs (and colab-serve requests) answer common
// cells without recomputing them. Identical in-flight cells are
// deduplicated: when two concurrent runs race on one cell, the second
// waits for the first's result. Hand one cache to many sessions with
// WithCellCache; Stats exposes the hit/miss counters.
type CellCache = experiment.Cache

// CellCacheOption configures a CellCache at construction.
type CellCacheOption func(*CellCache)

// WithCellCacheLimit bounds the cache to at most maxEntries cells with
// least-recently-used eviction: every hit, store and computed fill
// refreshes a cell's recency, and inserting past the bound drops the
// least recently used cell. Evictions are counted in CacheStats.
// maxEntries <= 0 leaves the cache unbounded (the default).
func WithCellCacheLimit(maxEntries int) CellCacheOption {
	return func(c *CellCache) { c.SetLimit(maxEntries) }
}

// NewCellCache returns an empty cell cache, unbounded unless configured
// with WithCellCacheLimit.
func NewCellCache(opts ...CellCacheOption) *CellCache {
	c := experiment.NewCache()
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// CacheStats is a point-in-time snapshot of a CellCache's counters.
type CacheStats = experiment.CacheStats

// CompactJournal rewrites a checkpoint journal (WithCheckpoint) in
// place, dropping duplicate records (the first occurrence of each cell
// key is kept verbatim) and any torn final line from a crash mid-write.
// The rewrite is atomic — a crash during compaction leaves the original
// journal intact — and the compacted journal replays to the identical
// cell set. It returns the records kept and dropped. The colab-fleet
// binary exposes this as -compact.
func CompactJournal(path string) (kept, dropped int, err error) {
	return experiment.CompactJournal(path)
}
