package colab_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	colab "colab"
)

// startFleet spins up a coordinator and n worker daemons on loopback and
// waits until all have registered.
func startFleet(t *testing.T, n int) *colab.Fleet {
	t.Helper()
	f := colab.NewFleet(colab.FleetOptions{
		RetryBackoff:      20 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		WorkerWaitTimeout: 10 * time.Second,
	})
	cts := httptest.NewServer(f)
	t.Cleanup(cts.Close)
	for i := 0; i < n; i++ {
		w := colab.NewFleetWorker(nil)
		wts := httptest.NewServer(w)
		t.Cleanup(wts.Close)
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		go colab.RegisterFleetWorker(ctx, nil, cts.URL, wts.URL, 50*time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.WaitWorkers(ctx, n); err != nil {
		t.Fatalf("workers never registered: %v", err)
	}
	return f
}

// TestFleetRunMatchesLocalRun is the public fleet guarantee: the same
// session run through WithFleet on two workers produces byte-identical
// CSV to the unsharded in-process run, and WithObserver streams the
// cells in the same order.
func TestFleetRunMatchesLocalRun(t *testing.T) {
	ref := runCSV(t, goldenSubset())
	f := startFleet(t, 2)
	var (
		mu       sync.Mutex
		streamed []colab.ExperimentResult
	)
	exp := goldenSubset(
		colab.WithFleet(f),
		colab.WithObserver(func(r colab.ExperimentResult) {
			mu.Lock()
			streamed = append(streamed, r)
			mu.Unlock()
		}),
	)
	got := runCSV(t, exp)
	if got != ref {
		t.Fatalf("fleet run diverges from local run:\nlocal:\n%s\nfleet:\n%s", ref, got)
	}
	if len(streamed) != 12 {
		t.Fatalf("observer streamed %d cells, want 12", len(streamed))
	}
	res := &colab.ExperimentResults{Cells: streamed}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ref {
		t.Fatalf("observer stream diverges from local run:\nlocal:\n%s\nstream:\n%s", ref, buf.String())
	}
}

// TestFleetRejectsLocalOnlyOptions pins the error surface: options that
// cannot travel the fleet wire fail fast with a message naming both
// options.
func TestFleetRejectsLocalOnlyOptions(t *testing.T) {
	f := colab.NewFleet(colab.FleetOptions{})
	for _, tc := range []struct {
		name string
		opt  colab.ExperimentOption
		want string
	}{
		{"tracer", colab.WithTracer(func(colab.ExperimentTrace) {}), "WithTracer"},
		{"model", colab.WithSpeedupModel(&colab.SpeedupModel{}), "WithSpeedupModel"},
		{"checkpoint", colab.WithCheckpoint("x.ndjson"), "WithCheckpoint"},
		{"cache", colab.WithCellCache(colab.NewCellCache()), "WithCellCache"},
		{"shard", colab.WithShard(0, 2), "WithShard"},
	} {
		_, err := goldenSubset(colab.WithFleet(f), tc.opt).Run(context.Background())
		if err == nil || !strings.Contains(err.Error(), tc.want) || !strings.Contains(err.Error(), "WithFleet") {
			t.Errorf("%s + fleet: error %v, want one naming %s and WithFleet", tc.name, err, tc.want)
		}
	}
	// Unnamed machine shapes have no wire form.
	_, err := colab.NewExperiment(
		colab.WithWorkloads("Sync-1"),
		colab.WithMachine(colab.NewConfig(3, 5, true)),
		colab.WithFleet(f),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "named shape") {
		t.Errorf("unnamed machine + fleet: error %v, want a named-shape error", err)
	}
}
