package colab

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"colab/internal/experiment"
	"colab/internal/workload"
)

// Experiment is a composable experiment session: a declarative
// workloads x machines x policies x seeds sweep that runs over a worker
// pool with automatic big-only baseline collection, returning auto-scored
// H_ANTT / H_STP cells. Build one with NewExperiment and functional
// options, then call Run:
//
//	exp := colab.NewExperiment(
//		colab.WithWorkloads("Sync-2", "Rand-7"),
//		colab.WithMachines(colab.EvaluatedConfigs()...),
//		colab.WithPolicies("linux", "wash", "colab"),
//		colab.WithSeeds(1, 2, 3),
//		colab.WithWorkers(8),
//	)
//	res, err := exp.Run(ctx)
//
// Results are deterministic: cells come back in cross-product order (seeds
// outermost, then workloads, machines, policies innermost) and are
// byte-identical for any worker count. Cancelling ctx aborts promptly —
// the simulation kernel itself is context-checked — and surfaces a wrapped
// ctx.Err().
type Experiment struct {
	workloads []string
	machines  []Config
	policies  []string
	seeds     []uint64
	params    Params
	workers   int
	tracer    func(ExperimentTrace)
	model     *SpeedupModel
}

// ExperimentOption configures an Experiment session.
type ExperimentOption func(*Experiment)

// NewExperiment builds a session from options. Defaults: machine
// Config2B2S, the three paper policies (PaperPolicies), seed 1, default
// kernel costs, GOMAXPROCS workers. Workloads have no default; Run errors
// without WithWorkloads.
func NewExperiment(opts ...ExperimentOption) *Experiment {
	e := &Experiment{}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// WithWorkloads adds workload scenarios to the sweep: registered scenario
// names (the Table 4 indexes "Sync-2", "Rand-7", ... and anything from
// RegisterScenario) or scenario-grammar specs ("ferret:4+bodytrack:8",
// "Sync-2@seed=7", "ferret:4@arrive=poisson(5ms)"). Open-system scenarios
// score each app's turnaround from its own arrival time. Repeatable; at
// least one workload is required.
func WithWorkloads(specs ...string) ExperimentOption {
	return func(e *Experiment) { e.workloads = append(e.workloads, specs...) }
}

// WithMachine adds one machine shape to the sweep. Repeatable.
func WithMachine(cfg Config) ExperimentOption {
	return func(e *Experiment) { e.machines = append(e.machines, cfg) }
}

// WithMachines adds machine shapes to the sweep.
func WithMachines(cfgs ...Config) ExperimentOption {
	return func(e *Experiment) { e.machines = append(e.machines, cfgs...) }
}

// WithPolicies adds registry policy names (built-in like "linux", "wash",
// "colab", "colab-dvfs", or user names from RegisterPolicy). Unknown names
// surface from Run with the full registered-name list.
func WithPolicies(names ...string) ExperimentOption {
	return func(e *Experiment) { e.policies = append(e.policies, names...) }
}

// WithSeeds adds workload-generation seeds; the sweep runs one full
// sub-matrix per seed.
func WithSeeds(seeds ...uint64) ExperimentOption {
	return func(e *Experiment) { e.seeds = append(e.seeds, seeds...) }
}

// WithParams sets the kernel cost parameters for every run.
func WithParams(p Params) ExperimentOption {
	return func(e *Experiment) { e.params = p }
}

// WithWorkers bounds run parallelism (0 = GOMAXPROCS). Results do not
// depend on the worker count.
func WithWorkers(n int) ExperimentOption {
	return func(e *Experiment) { e.workers = n }
}

// ExperimentTrace is one traced scheduling event: the cell it belongs to,
// the core order of the run that produced it (each cell simulates
// big-first then little-first, and core IDs mean different tiers in the
// two layouts), and the event itself.
type ExperimentTrace struct {
	Run      ExperimentRun
	BigFirst bool
	Event    TraceEvent
}

// WithTracer streams every scheduling event of every mix run (baseline
// runs are not traced) to fn. A tracer forces sequential execution so the
// event stream is deterministic.
func WithTracer(fn func(ExperimentTrace)) ExperimentOption {
	return func(e *Experiment) { e.tracer = fn }
}

// WithSpeedupModel injects a pre-trained speedup model for the AMP-aware
// policies instead of the lazily trained default.
func WithSpeedupModel(m *SpeedupModel) ExperimentOption {
	return func(e *Experiment) { e.model = m }
}

// ExperimentRun identifies one cell of a session: one (workload, machine,
// policy, seed) combination, scored over both core orders.
type ExperimentRun struct {
	Workload string
	Machine  string
	Policy   string
	Seed     uint64
}

// ExperimentResult is one scored cell: the auto-baselined H_ANTT / H_STP
// pair (each app's big-only-alone turnaround is collected and cached
// automatically; no manual baseline plumbing).
type ExperimentResult struct {
	Run   ExperimentRun
	Score MixScore
}

// ExperimentResults holds a session's cells in deterministic cross-product
// order.
type ExperimentResults struct {
	Cells []ExperimentResult
}

// Run executes the sweep and returns one result per cross-product cell.
func (e *Experiment) Run(ctx context.Context) (*ExperimentResults, error) {
	if len(e.workloads) == 0 {
		return nil, fmt.Errorf("colab: experiment has no workloads (use WithWorkloads)")
	}
	specs := make([]workload.Spec, 0, len(e.workloads))
	for _, idx := range e.workloads {
		spec, err := workload.ResolveSpec(idx)
		if err != nil {
			return nil, fmt.Errorf("colab: %w", err)
		}
		specs = append(specs, spec)
	}
	machines := e.machines
	if len(machines) == 0 {
		machines = []Config{Config2B2S}
	}
	policies := e.policies
	if len(policies) == 0 {
		policies = PaperPolicies()
	}
	seeds := e.seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	b := &experiment.Batch{
		Scenarios: specs,
		Configs:   machines,
		Policies:  policies,
		Seeds:     seeds,
		Params:    e.params,
		Workers:   e.workers,
	}
	if e.model != nil {
		b.Speedup = e.model.ThreadPredictor()
	}
	if e.tracer != nil {
		b.Tracer = func(key experiment.BatchKey, bigFirst bool, ev TraceEvent) {
			e.tracer(ExperimentTrace{Run: runFromKey(key), BigFirst: bigFirst, Event: ev})
		}
	}
	cells, err := b.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &ExperimentResults{Cells: make([]ExperimentResult, len(cells))}
	for i, c := range cells {
		out.Cells[i] = ExperimentResult{Run: runFromKey(c.Key), Score: c.Score}
	}
	return out, nil
}

func runFromKey(k experiment.BatchKey) ExperimentRun {
	return ExperimentRun{Workload: k.Workload, Machine: k.Config, Policy: k.Policy, Seed: k.Seed}
}

// Normalized returns a copy of the results with every cell's score divided
// by the same-(workload, machine, seed) cell of the reference policy
// (H_ANTT < 1 and H_STP > 1 then mean better than the reference). It
// errors when a reference cell is missing.
func (r *ExperimentResults) Normalized(refPolicy string) (*ExperimentResults, error) {
	type axis struct {
		workload, machine string
		seed              uint64
	}
	refs := make(map[axis]MixScore)
	for _, c := range r.Cells {
		if c.Run.Policy == refPolicy {
			refs[axis{c.Run.Workload, c.Run.Machine, c.Run.Seed}] = c.Score
		}
	}
	out := &ExperimentResults{Cells: make([]ExperimentResult, len(r.Cells))}
	for i, c := range r.Cells {
		ref, ok := refs[axis{c.Run.Workload, c.Run.Machine, c.Run.Seed}]
		if !ok {
			return nil, fmt.Errorf("colab: no %q reference cell for %s on %s seed %d",
				refPolicy, c.Run.Workload, c.Run.Machine, c.Run.Seed)
		}
		out.Cells[i] = c
		out.Cells[i].Score = MixScore{HANTT: c.Score.HANTT / ref.HANTT, HSTP: c.Score.HSTP / ref.HSTP}
	}
	return out, nil
}

// WriteCSV writes the cells as CSV at full float precision. The bytes are
// deterministic for a given session spec, independent of worker count.
// Fields containing commas or quotes (scenario-grammar workload names like
// "...uniform(0ns,40ms)") are quoted per RFC 4180; plain names stay bare.
func (r *ExperimentResults) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "machine", "policy", "seed", "h_antt", "h_stp"}); err != nil {
		return err
	}
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		row := []string{
			c.Run.Workload, c.Run.Machine, c.Run.Policy,
			strconv.FormatUint(c.Run.Seed, 10), ff(c.Score.HANTT), ff(c.Score.HSTP),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTable writes the cells as an aligned human-readable table.
func (r *ExperimentResults) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmachine\tpolicy\tseed\tH_ANTT\tH_STP")
	for _, c := range r.Cells {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.3f\t%.3f\n",
			c.Run.Workload, c.Run.Machine, c.Run.Policy, c.Run.Seed, c.Score.HANTT, c.Score.HSTP)
	}
	return tw.Flush()
}
