package colab

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"colab/internal/experiment"
	"colab/internal/workload"
)

// Experiment is a composable experiment session: a declarative
// workloads x machines x policies x seeds sweep that runs over a worker
// pool with automatic big-only baseline collection, returning auto-scored
// H_ANTT / H_STP cells. Build one with NewExperiment and functional
// options, then call Run:
//
//	exp := colab.NewExperiment(
//		colab.WithWorkloads("Sync-2", "Rand-7"),
//		colab.WithMachines(colab.EvaluatedConfigs()...),
//		colab.WithPolicies("linux", "wash", "colab"),
//		colab.WithSeeds(1, 2, 3),
//		colab.WithWorkers(8),
//	)
//	res, err := exp.Run(ctx)
//
// Results are deterministic: cells come back in cross-product order (seeds
// outermost, then workloads, machines, policies innermost) and are
// byte-identical for any worker count. Cancelling ctx aborts promptly —
// the simulation kernel itself is context-checked — and surfaces a wrapped
// ctx.Err().
type Experiment struct {
	workloads  []string
	machines   []Config
	policies   []string
	seeds      []uint64
	params     Params
	workers    int
	tracer     func(ExperimentTrace)
	model      *SpeedupModel
	shardIdx   int
	shardCount int
	checkpoint string
	cache      *CellCache
	observer   func(ExperimentResult)
	fleet      *Fleet
}

// ExperimentOption configures an Experiment session.
type ExperimentOption func(*Experiment)

// NewExperiment builds a session from options. Defaults: machine
// Config2B2S, the three paper policies (PaperPolicies), seed 1, default
// kernel costs, GOMAXPROCS workers. Workloads have no default; Run errors
// without WithWorkloads.
func NewExperiment(opts ...ExperimentOption) *Experiment {
	e := &Experiment{}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// WithWorkloads adds workload scenarios to the sweep: registered scenario
// names (the Table 4 indexes "Sync-2", "Rand-7", ... and anything from
// RegisterScenario) or scenario-grammar specs ("ferret:4+bodytrack:8",
// "Sync-2@seed=7", "ferret:4@arrive=poisson(5ms)"). Open-system scenarios
// score each app's turnaround from its own arrival time. Repeatable; at
// least one workload is required.
func WithWorkloads(specs ...string) ExperimentOption {
	return func(e *Experiment) { e.workloads = append(e.workloads, specs...) }
}

// WithMachine adds one machine shape to the sweep. Repeatable.
func WithMachine(cfg Config) ExperimentOption {
	return func(e *Experiment) { e.machines = append(e.machines, cfg) }
}

// WithMachines adds machine shapes to the sweep.
func WithMachines(cfgs ...Config) ExperimentOption {
	return func(e *Experiment) { e.machines = append(e.machines, cfgs...) }
}

// WithPolicies adds registry policy names (built-in like "linux", "wash",
// "colab", "colab-dvfs", or user names from RegisterPolicy). Unknown names
// surface from Run with the full registered-name list.
func WithPolicies(names ...string) ExperimentOption {
	return func(e *Experiment) { e.policies = append(e.policies, names...) }
}

// WithSeeds adds workload-generation seeds; the sweep runs one full
// sub-matrix per seed.
func WithSeeds(seeds ...uint64) ExperimentOption {
	return func(e *Experiment) { e.seeds = append(e.seeds, seeds...) }
}

// WithParams sets the kernel cost parameters for every run.
func WithParams(p Params) ExperimentOption {
	return func(e *Experiment) { e.params = p }
}

// WithWorkers bounds run parallelism (0 = GOMAXPROCS). Results do not
// depend on the worker count.
func WithWorkers(n int) ExperimentOption {
	return func(e *Experiment) { e.workers = n }
}

// ExperimentTrace is one traced scheduling event: the cell it belongs to,
// the core order of the run that produced it (each cell simulates
// big-first then little-first, and core IDs mean different tiers in the
// two layouts), and the event itself.
type ExperimentTrace struct {
	Run      ExperimentRun
	BigFirst bool
	Event    TraceEvent
}

// WithTracer streams every scheduling event of every mix run (baseline
// runs are not traced) to fn. A tracer forces sequential execution so the
// event stream is deterministic.
func WithTracer(fn func(ExperimentTrace)) ExperimentOption {
	return func(e *Experiment) { e.tracer = fn }
}

// WithSpeedupModel injects a pre-trained speedup model for the AMP-aware
// policies instead of the lazily trained default.
func WithSpeedupModel(m *SpeedupModel) ExperimentOption {
	return func(e *Experiment) { e.model = m }
}

// WithShard assigns this session shard index of count: one slice of the
// sweep, for fanning a large cross-product out over independent processes
// or hosts. The assignment is deterministic — derived from the session
// spec alone, so every shard agrees without coordination — and works in
// baseline-sharing groups (all cells of one seed + closed canonical
// scenario stay together), so no big-only-alone baseline is computed by
// two shards. Each shard returns its own cells in cross-product order;
// MergeShards reassembles the full result set byte-identical to an
// unsharded Run.
func WithShard(index, count int) ExperimentOption {
	return func(e *Experiment) { e.shardIdx, e.shardCount = index, count }
}

// WithCheckpoint journals completed cells to path (NDJSON, one fsynced
// record per cell keyed by CellKey) and replays the journal on start: a
// sweep killed mid-run resumes where it died when re-run with the same
// spec and path, and its final results are byte-identical to an
// uninterrupted run. Sharded sessions must use one path per shard.
func WithCheckpoint(path string) ExperimentOption {
	return func(e *Experiment) { e.checkpoint = path }
}

// WithCellCache attaches a shared content-addressed cell cache: cells
// whose CellKey is already cached are answered without simulation, and
// computed cells are stored for later sessions. Concurrent sessions
// sharing one cache dedup identical in-flight cells — the layer behind
// colab-serve.
func WithCellCache(c *CellCache) ExperimentOption {
	return func(e *Experiment) { e.cache = c }
}

// WithObserver streams cells to fn as the sweep runs: every cell of the
// session's result set is delivered exactly once, in the same
// deterministic cross-product order Run returns, each as soon as it and
// all its predecessors have completed — so the stream's content and order
// are independent of worker scheduling. fn is called from worker
// goroutines (one call at a time); the final ExperimentResults still
// carries every cell.
func WithObserver(fn func(ExperimentResult)) ExperimentOption {
	return func(e *Experiment) { e.observer = fn }
}

// ExperimentRun identifies one cell of a session: one (workload, machine,
// policy, seed) combination, scored over both core orders.
type ExperimentRun struct {
	Workload string
	Machine  string
	Policy   string
	Seed     uint64
}

// ExperimentResult is one scored cell: the auto-baselined H_ANTT / H_STP
// pair (each app's big-only-alone turnaround is collected and cached
// automatically; no manual baseline plumbing).
type ExperimentResult struct {
	Run   ExperimentRun
	Score MixScore
	// Key is the cell's canonical content address (see CellKey).
	Key CellKey
	// Cached reports the score was replayed from a checkpoint journal or
	// answered by a cell cache rather than simulated by this run.
	Cached bool
}

// ExperimentResults holds a session's cells in deterministic cross-product
// order.
type ExperimentResults struct {
	Cells []ExperimentResult
}

// matrix resolves the session's sweep axes with their defaults applied:
// the parsed workload specs, machines, policies and seeds whose
// cross-product (seeds outermost, then workloads, machines, policies
// innermost) is the session's cell set.
func (e *Experiment) matrix() (specs []workload.Spec, machines []Config, policies []string, seeds []uint64, err error) {
	if len(e.workloads) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("colab: experiment has no workloads (use WithWorkloads)")
	}
	specs = make([]workload.Spec, 0, len(e.workloads))
	for _, idx := range e.workloads {
		spec, err := workload.ResolveSpec(idx)
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("colab: %w", err)
		}
		specs = append(specs, spec)
	}
	machines = e.machines
	if len(machines) == 0 {
		machines = []Config{Config2B2S}
	}
	policies = e.policies
	if len(policies) == 0 {
		policies = PaperPolicies()
	}
	seeds = e.seeds
	if len(seeds) == 0 {
		seeds = []uint64{1}
	}
	return specs, machines, policies, seeds, nil
}

// Run executes the sweep and returns one result per cross-product cell
// (one result per this shard's cells when WithShard is set). With
// WithFleet, the sweep runs on the fleet's workers instead of in-process
// and returns the full reassembled result set.
func (e *Experiment) Run(ctx context.Context) (*ExperimentResults, error) {
	if e.fleet != nil {
		return e.runFleet(ctx)
	}
	specs, machines, policies, seeds, err := e.matrix()
	if err != nil {
		return nil, err
	}
	b := &experiment.Batch{
		Scenarios:  specs,
		Configs:    machines,
		Policies:   policies,
		Seeds:      seeds,
		Params:     e.params,
		Workers:    e.workers,
		ShardIndex: e.shardIdx,
		ShardCount: e.shardCount,
		Cache:      e.cache,
	}
	if e.model != nil {
		b.Speedup = e.model.ThreadPredictor()
	}
	if e.tracer != nil {
		b.Tracer = func(key experiment.BatchKey, bigFirst bool, ev TraceEvent) {
			e.tracer(ExperimentTrace{Run: runFromKey(key), BigFirst: bigFirst, Event: ev})
		}
	}
	if e.observer != nil {
		b.Observer = func(c experiment.BatchCell) { e.observer(resultFromCell(c)) }
	}
	if e.checkpoint != "" {
		j, err := experiment.OpenJournal(e.checkpoint)
		if err != nil {
			return nil, fmt.Errorf("colab: %w", err)
		}
		defer j.Close()
		b.Journal = j
	}
	cells, err := b.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &ExperimentResults{Cells: make([]ExperimentResult, len(cells))}
	for i, c := range cells {
		out.Cells[i] = resultFromCell(c)
	}
	return out, nil
}

// MergeShards reassembles the full result set from per-shard runs of the
// same session spec: the union of the shards' cells, reordered into the
// session's cross-product order — byte-identical (WriteCSV/WriteTable) to
// what an unsharded Run returns. It errors when the shards do not cover
// the sweep exactly (a missing shard, a shard run against a different
// spec, or the same shard twice).
func (e *Experiment) MergeShards(shards ...*ExperimentResults) (*ExperimentResults, error) {
	specs, machines, policies, seeds, err := e.matrix()
	if err != nil {
		return nil, err
	}
	// Cells are matched by run identity; a list per run tolerates sweeps
	// that intentionally repeat an axis value (the duplicates are
	// indistinguishable, so any assignment is the right one).
	pool := make(map[ExperimentRun][]ExperimentResult)
	total := 0
	for _, s := range shards {
		for _, c := range s.Cells {
			pool[c.Run] = append(pool[c.Run], c)
			total++
		}
	}
	out := &ExperimentResults{}
	for _, seed := range seeds {
		for _, spec := range specs {
			for _, cfg := range machines {
				for _, kind := range policies {
					run := ExperimentRun{Workload: spec.Name, Machine: cfg.Name, Policy: kind, Seed: seed}
					cells := pool[run]
					if len(cells) == 0 {
						return nil, fmt.Errorf("colab: merge is missing cell %s/%s/%s seed %d (were all shards of this session run?)",
							run.Workload, run.Machine, run.Policy, run.Seed)
					}
					out.Cells = append(out.Cells, cells[0])
					pool[run] = cells[1:]
					total--
				}
			}
		}
	}
	if total != 0 {
		return nil, fmt.Errorf("colab: merge has %d surplus cells beyond the session's sweep (same shard merged twice, or a different session spec?)", total)
	}
	return out, nil
}

func resultFromCell(c experiment.BatchCell) ExperimentResult {
	return ExperimentResult{Run: runFromKey(c.Key), Score: c.Score, Key: c.CellKey, Cached: c.Cached}
}

func runFromKey(k experiment.BatchKey) ExperimentRun {
	return ExperimentRun{Workload: k.Workload, Machine: k.Config, Policy: k.Policy, Seed: k.Seed}
}

// Normalized returns a copy of the results with every cell's score divided
// by the same-(workload, machine, seed) cell of the reference policy
// (H_ANTT < 1 and H_STP > 1 then mean better than the reference). It
// errors when a reference cell is missing.
func (r *ExperimentResults) Normalized(refPolicy string) (*ExperimentResults, error) {
	type axis struct {
		workload, machine string
		seed              uint64
	}
	refs := make(map[axis]MixScore)
	for _, c := range r.Cells {
		if c.Run.Policy == refPolicy {
			refs[axis{c.Run.Workload, c.Run.Machine, c.Run.Seed}] = c.Score
		}
	}
	out := &ExperimentResults{Cells: make([]ExperimentResult, len(r.Cells))}
	for i, c := range r.Cells {
		ref, ok := refs[axis{c.Run.Workload, c.Run.Machine, c.Run.Seed}]
		if !ok {
			return nil, fmt.Errorf("colab: no %q reference cell for %s on %s seed %d",
				refPolicy, c.Run.Workload, c.Run.Machine, c.Run.Seed)
		}
		out.Cells[i] = c
		out.Cells[i].Score = MixScore{HANTT: c.Score.HANTT / ref.HANTT, HSTP: c.Score.HSTP / ref.HSTP}
	}
	return out, nil
}

// Each is the iterator face of the results: it calls yield for every cell
// in the deterministic cross-product order Run returned them, stopping
// early when yield returns false. It is a range-over-func iterator
// (`for cell := range res.Each` on toolchains with that feature) and
// equally callable directly; WriteCSV and WriteTable are built on it, as
// are streaming consumers that pair it with WithObserver's identical
// ordering.
func (r *ExperimentResults) Each(yield func(ExperimentResult) bool) {
	for _, c := range r.Cells {
		if !yield(c) {
			return
		}
	}
}

// WriteCSV writes the cells as CSV at full float precision. The bytes are
// deterministic for a given session spec, independent of worker count.
// Fields containing commas or quotes (scenario-grammar workload names like
// "...uniform(0ns,40ms)") are quoted per RFC 4180; plain names stay bare.
func (r *ExperimentResults) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "machine", "policy", "seed", "h_antt", "h_stp"}); err != nil {
		return err
	}
	var err error
	r.Each(func(c ExperimentResult) bool {
		err = cw.Write(csvRow(c))
		return err == nil
	})
	if err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// csvRow renders one cell as its WriteCSV record.
func csvRow(c ExperimentResult) []string {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return []string{
		c.Run.Workload, c.Run.Machine, c.Run.Policy,
		strconv.FormatUint(c.Run.Seed, 10), ff(c.Score.HANTT), ff(c.Score.HSTP),
	}
}

// WriteTable writes the cells as an aligned human-readable table.
func (r *ExperimentResults) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tmachine\tpolicy\tseed\tH_ANTT\tH_STP")
	r.Each(func(c ExperimentResult) bool {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.3f\t%.3f\n",
			c.Run.Workload, c.Run.Machine, c.Run.Policy, c.Run.Seed, c.Score.HANTT, c.Score.HSTP)
		return true
	})
	return tw.Flush()
}
