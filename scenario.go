package colab

import (
	"colab/internal/loadgen"
	"colab/internal/mathx"
	"colab/internal/workload"
)

// This file is the public scenario API: the workload-side analog of the
// policy/stage registry. Benchmarks (parametric app generators authored
// against AppBuilder) and scenarios (named workload compositions with
// optional arrival processes) register process-wide and then resolve
// everywhere a workload is named — BuildWorkload, Experiment sessions
// (WithWorkloads) and the cmd tools — through the scenario grammar:
//
//	"ferret:4+bodytrack:8"            two benchmark instances, closed system
//	"Sync-2@seed=7"                   a Table 4 mix at an overridden seed
//	"ferret:4@arrive=poisson(5ms)"    open system: Poisson arrivals
//	"dedup:4@arrive=trace(0,10ms)"    open system: replayed arrival times

// Workload-authoring surface: the builder benchmark generators receive,
// the structural program builders, and the RNG all randomness draws from.
type (
	// AppBuilder authors one application: sync-object IDs, bounded queues
	// and threads over the task.Op vocabulary (Compute, Lock/Unlock,
	// Barrier, Put/Get, Sleep, Phase). Benchmark.Gen receives one; the 15
	// built-in Table 3 generators are written against exactly this API.
	AppBuilder = workload.Builder
	// DataParallelOptions parameterises AppBuilder.DataParallel: a
	// barrier-phased data-parallel program (the SPLASH-2 shape).
	DataParallelOptions = workload.DataParallelOptions
	// PipeStage describes one stage of AppBuilder.Pipeline: an
	// items-through-stages pipeline over bounded queues (the dedup/ferret
	// shape).
	PipeStage = workload.PipeStage
	// RNG is the deterministic seedable random source workload generation
	// draws from.
	RNG = mathx.RNG
	// Scenario is a parsed workload scenario: ordered terms of benchmark
	// instances with optional seed overrides and arrival processes.
	Scenario = workload.Spec
	// ScenarioTerm is one "+"-separated part of a scenario.
	ScenarioTerm = workload.Term
	// ScenarioApp is one benchmark instance inside a scenario term.
	ScenarioApp = workload.AppSpec
	// Arrival describes when a scenario term's apps enter the system: the
	// zero value is closed (time zero); fixed-offset, uniform, Poisson and
	// trace-replay processes model open systems.
	Arrival = workload.Arrival
	// ArrivalKind names an arrival process.
	ArrivalKind = workload.ArrivalKind
	// LoadGen is a spec-global load-generator transformer (the grammar's
	// @load= clause): open-loop target utilisation, closed-loop think
	// time, or a time-varying rate envelope.
	LoadGen = loadgen.Load
	// LoadKind names a load-generator family.
	LoadKind = loadgen.Kind
	// WorkloadClass is a scenario's declared class label (the grammar's
	// @class= clause), the grouping key of Runner.ClassTable.
	WorkloadClass = workload.Class
	// SuiteScenario is one member of the registered standard scenario
	// suite (StandardSuite).
	SuiteScenario = workload.SuiteScenario
)

// Arrival process kinds.
const (
	ArriveClosed    = workload.ArriveClosed
	ArriveFixed     = workload.ArriveFixed
	ArriveUniform   = workload.ArriveUniform
	ArrivePoisson   = workload.ArrivePoisson
	ArriveTrace     = workload.ArriveTrace
	ArriveTraceFile = workload.ArriveTraceFile
)

// Load-generator kinds (@load=).
const (
	LoadNone    = loadgen.None
	LoadUtil    = loadgen.Util
	LoadClosed  = loadgen.Closed
	LoadDiurnal = loadgen.Diurnal
	LoadBurst   = loadgen.Burst
)

// StandardSuite returns the registered standard scenario suite —
// datacenter-day, interactive-burst, batch-backfill — in registration
// order. Each member is runnable by name everywhere workloads are named
// (Experiment, colab-sim, colab-serve, colab-fleet), pins every term's
// seed, and declares the class label ClassTable groups by.
func StandardSuite() []SuiteScenario { return workload.StandardSuite() }

// NewRNG returns a deterministic RNG for standalone app authoring.
func NewRNG(seed uint64) *RNG { return mathx.NewRNG(seed) }

// NewAppBuilder starts a standalone app outside the benchmark registry.
// appID must be unique within the workload the app joins; the same
// (appID, seed) pair reproduces the same app.
func NewAppBuilder(appID int, name string, rng *RNG) *AppBuilder {
	return workload.NewAppBuilder(appID, name, rng)
}

// The four work-profile families of the built-in generators, each
// returning a jittered microarchitectural archetype: high-ILP FP kernels,
// bandwidth-bound streaming, mixed integer and control-heavy code.
var (
	ComputeProfile  = workload.ComputeProfile
	MemoryProfile   = workload.MemoryProfile
	BalancedProfile = workload.BalancedProfile
	BranchyProfile  = workload.BranchyProfile
)

// RegisterBenchmark adds a benchmark generator to the process-wide
// registry, making it addressable by name everywhere workloads are named:
// the scenario grammar (BuildWorkload, WithWorkloads), BuildBenchmark and
// the cmd tools. It errors on a grammar-unsafe name, a nil generator, a
// non-positive DefaultThreads, or a name collision.
func RegisterBenchmark(b Benchmark) error { return workload.Register(b) }

// MustRegisterBenchmark is RegisterBenchmark for init-time use; it panics
// on error.
func MustRegisterBenchmark(b Benchmark) { workload.MustRegister(b) }

// BenchmarkNames returns every registered benchmark name (built-in and
// user) in sorted order.
func BenchmarkNames() []string { return workload.BenchmarkNames() }

// RegisteredBenchmarks returns every registered benchmark — the Table 3
// built-ins in paper order, then user benchmarks in registration order.
func RegisteredBenchmarks() []Benchmark { return workload.Registered() }

// RegisterScenario parses spec with the scenario grammar and registers it
// under name, making the name resolvable wherever workloads are named. It
// errors on a grammar-unsafe or colliding name, or a spec that does not
// parse.
func RegisterScenario(name, spec string) error {
	s, err := workload.ParseSpec(spec)
	if err != nil {
		return err
	}
	return workload.RegisterScenario(name, s)
}

// MustRegisterScenario is RegisterScenario for init-time use; it panics on
// error.
func MustRegisterScenario(name, spec string) {
	if err := RegisterScenario(name, spec); err != nil {
		panic(err)
	}
}

// ScenarioNames returns every registered scenario name (the 26 Table 4
// indexes and user scenarios) in sorted order.
func ScenarioNames() []string { return workload.ScenarioNames() }

// ParseScenario parses a scenario-grammar spec (or resolves a registered
// scenario name) without building it — the inspection surface behind
// colab-workloads -describe. The returned scenario's String() is the
// canonical grammar form.
func ParseScenario(spec string) (Scenario, error) { return workload.ResolveSpec(spec) }
