package colab_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	colab "colab"
)

// goldenSubset is the golden-corpus subset the distribution-layer
// equivalence tests sweep: Table 4 indices plus an open-system arrival
// variant (which shares the closed scenarios' baselines), over two paper
// policies and two seeds.
func goldenSubset(extra ...colab.ExperimentOption) *colab.Experiment {
	opts := []colab.ExperimentOption{
		colab.WithWorkloads("Sync-1", "Comp-1", "Sync-1@arrive=poisson(5ms)"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("linux", "wash"),
		colab.WithSeeds(1, 2),
	}
	return colab.NewExperiment(append(opts, extra...)...)
}

func runCSV(t *testing.T, exp *colab.Experiment) string {
	t.Helper()
	res, err := exp.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestShardUnionDeterminism is the sharding guarantee: for every shard
// count and worker count, the merged union of independently run shards is
// byte-identical to the unsharded in-process run on the golden-corpus
// subset.
func TestShardUnionDeterminism(t *testing.T) {
	ref := runCSV(t, goldenSubset())
	if got := len(strings.Split(strings.TrimSpace(ref), "\n")); got != 1+12 {
		t.Fatalf("reference csv has %d lines, want header + 12 cells:\n%s", got, ref)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4, 8} {
			pieces := make([]*colab.ExperimentResults, shards)
			total := 0
			for idx := 0; idx < shards; idx++ {
				// Every shard is a fresh session: no shared memo caches, as
				// with separate processes.
				res, err := goldenSubset(
					colab.WithShard(idx, shards),
					colab.WithWorkers(workers),
				).Run(context.Background())
				if err != nil {
					t.Fatalf("shard %d/%d workers=%d: %v", idx, shards, workers, err)
				}
				pieces[idx] = res
				total += len(res.Cells)
			}
			if total != 12 {
				t.Fatalf("shards %d workers %d cover %d cells, want 12", shards, workers, total)
			}
			merged, err := goldenSubset().MergeShards(pieces...)
			if err != nil {
				t.Fatalf("merge %d shards: %v", shards, err)
			}
			var buf bytes.Buffer
			if err := merged.WriteCSV(&buf); err != nil {
				t.Fatal(err)
			}
			if buf.String() != ref {
				t.Errorf("shards=%d workers=%d union differs from unsharded run:\n--- unsharded\n%s\n--- merged\n%s",
					shards, workers, ref, buf.String())
			}
		}
	}
}

func TestMergeShardsValidation(t *testing.T) {
	full, err := goldenSubset().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := goldenSubset().MergeShards(full, full); err == nil ||
		!strings.Contains(err.Error(), "surplus") {
		t.Errorf("duplicated shard must be rejected, got: %v", err)
	}
	shard0, err := goldenSubset(colab.WithShard(0, 2)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := goldenSubset().MergeShards(shard0); err == nil ||
		!strings.Contains(err.Error(), "missing cell") {
		t.Errorf("incomplete union must name the missing cell, got: %v", err)
	}
}

func TestShardValidation(t *testing.T) {
	if _, err := goldenSubset(colab.WithShard(2, 2)).Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "shard") {
		t.Errorf("out-of-range shard index must error, got: %v", err)
	}
	if _, err := goldenSubset(colab.WithShard(-1, -2)).Run(context.Background()); err == nil {
		t.Error("negative shard coordinates must error")
	}
}

// TestCheckpointKillResume kills a journaled sweep mid-run, resumes it
// over the same journal, and requires the resumed run's output to be
// byte-identical to an uninterrupted run — with the pre-kill cells
// replayed, not recomputed.
func TestCheckpointKillResume(t *testing.T) {
	ref := runCSV(t, goldenSubset())
	path := filepath.Join(t.TempDir(), "sweep.ndjson")

	// First attempt: cancel the run as soon as the first cell lands —
	// the observer fires mid-sweep, exactly like a kill signal.
	ctx, cancel := context.WithCancel(context.Background())
	killed := 0
	_, err := goldenSubset(
		colab.WithCheckpoint(path),
		colab.WithWorkers(2),
		colab.WithObserver(func(colab.ExperimentResult) {
			killed++
			cancel()
		}),
	).Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run must surface ctx.Err(), got %v", err)
	}
	if killed == 0 {
		t.Fatal("observer never fired before the kill")
	}
	data, err := os.ReadFile(path)
	if err != nil || len(bytes.TrimSpace(data)) == 0 {
		t.Fatalf("journal empty after kill (err=%v): the completed cells were lost", err)
	}

	// Simulate the kill landing mid-append: a torn trailing record must
	// not block the resume.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(f, `{"key":"torn-by-kill`)
	f.Close()

	// Resume: same spec, same journal.
	replayed := 0
	resumed, err := goldenSubset(
		colab.WithCheckpoint(path),
		colab.WithObserver(func(c colab.ExperimentResult) {
			if c.Cached {
				replayed++
			}
		}),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if replayed == 0 {
		t.Error("resume recomputed every cell; journal was not replayed")
	}
	var buf bytes.Buffer
	if err := resumed.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != ref {
		t.Errorf("resumed output differs from uninterrupted run:\n--- uninterrupted\n%s\n--- resumed\n%s", ref, buf.String())
	}

	// A third run over the now-complete journal replays everything.
	again, err := goldenSubset(colab.WithCheckpoint(path)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range again.Cells {
		if !c.Cached {
			t.Errorf("cell %v recomputed despite a complete journal", c.Run)
		}
	}
}

// Observer delivery must be the deterministic cross-product order, not
// completion order, at any worker count — and must match both the final
// Cells slice and the Each iterator.
func TestObserverDeterministicOrder(t *testing.T) {
	var streamed []colab.ExperimentResult
	res, err := goldenSubset(
		colab.WithWorkers(8),
		colab.WithObserver(func(c colab.ExperimentResult) { streamed = append(streamed, c) }),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Cells) {
		t.Fatalf("observer saw %d cells, results hold %d", len(streamed), len(res.Cells))
	}
	i := 0
	res.Each(func(c colab.ExperimentResult) bool {
		if streamed[i] != c {
			t.Errorf("cell %d: streamed %+v, results %+v", i, streamed[i], c)
		}
		i++
		return true
	})
	// Each must honour an early stop.
	n := 0
	res.Each(func(colab.ExperimentResult) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Each ignored early stop: %d yields", n)
	}
}

// A shared CellCache must answer a repeated identical session entirely
// from cache, and overlapping sessions must share cells.
func TestCellCacheAcrossSessions(t *testing.T) {
	cache := colab.NewCellCache()
	first, err := goldenSubset(colab.WithCellCache(cache)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range first.Cells {
		if c.Cached {
			t.Fatalf("cold cache served cell %v", c.Run)
		}
	}
	afterFirst := cache.Stats()
	if afterFirst.Misses == 0 || afterFirst.Cells == 0 {
		t.Fatalf("cold run recorded no misses: %+v", afterFirst)
	}
	second, err := goldenSubset(colab.WithCellCache(cache)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range second.Cells {
		if !c.Cached {
			t.Errorf("warm cache recomputed cell %v", c.Run)
		}
	}
	s := cache.Stats()
	if s.Misses != afterFirst.Misses {
		t.Errorf("second identical session missed the cache: %+v vs %+v", s, afterFirst)
	}
	if s.Hits < uint64(len(second.Cells)) {
		t.Errorf("second session hits = %d, want >= %d", s.Hits, len(second.Cells))
	}
	// Scores must be identical cell for cell.
	for i := range first.Cells {
		if first.Cells[i].Score != second.Cells[i].Score || first.Cells[i].Key != second.Cells[i].Key {
			t.Errorf("cached cell diverged: %+v vs %+v", first.Cells[i], second.Cells[i])
		}
	}
}

// The key carried on every result must round-trip through the public
// parser and carry the canonical coordinates.
func TestExperimentResultKeys(t *testing.T) {
	res, err := colab.NewExperiment(
		colab.WithWorkloads("ferret:4 + bodytrack:8"),
		colab.WithPolicies("linux"),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("got %d cells, want 1", len(res.Cells))
	}
	k := res.Cells[0].Key
	if k.Scenario != "ferret:4+bodytrack:8" {
		t.Errorf("key scenario %q not canonical", k.Scenario)
	}
	if k.Policy != "linux" || k.Seed != 1 {
		t.Errorf("key coordinates wrong: %+v", k)
	}
	back, err := colab.ParseCellKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Errorf("public round trip changed key: %+v -> %+v", k, back)
	}
}
