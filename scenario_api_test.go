package colab_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	colab "colab"
)

// A custom benchmark authored against the public builder registers once
// and then resolves everywhere workloads are named: BuildBenchmark, the
// scenario grammar and an Experiment session.
func TestRegisterBenchmarkEndToEnd(t *testing.T) {
	err := colab.RegisterBenchmark(colab.Benchmark{
		Name: "apitest-spin", Suite: "example", DefaultThreads: 2,
		Gen: func(b *colab.AppBuilder, n int) {
			lock := b.NewID()
			for i := 0; i < n; i++ {
				b.Thread(fmt.Sprintf("w%d", i), colab.ComputeProfile(b.RNG()), colab.Program{
					colab.Compute{Work: 2e6},
					colab.Lock{ID: lock},
					colab.Compute{Work: 0.2e6},
					colab.Unlock{ID: lock},
					colab.Compute{Work: 2e6},
				})
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := colab.RegisterBenchmark(colab.Benchmark{Name: "apitest-spin", DefaultThreads: 2, Gen: func(b *colab.AppBuilder, n int) {}}); err == nil {
		t.Fatal("duplicate registration must error")
	}
	w, err := colab.BuildBenchmark("apitest-spin", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumThreads() != 3 {
		t.Fatalf("threads = %d", w.NumThreads())
	}
	// Same benchmark through the grammar, in a mix, in a session.
	res, err := colab.NewExperiment(
		colab.WithWorkloads("apitest-spin:2+radix:2"),
		colab.WithMachine(colab.Config2B2S),
		colab.WithPolicies("linux"),
	).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || res.Cells[0].Score.HANTT <= 0 {
		t.Fatalf("session over a registered benchmark failed: %+v", res.Cells)
	}
}

// The acceptance criterion: an open-system scenario with mid-run arrivals
// runs deterministically through colab.Experiment — byte-identical CSV for
// any worker count and across two sessions at the same seed.
func TestOpenScenarioDeterministicThroughExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates open mixes under two policies; not -short")
	}
	const spec = "radix:2+fft:2@arrive=uniform(0,40ms)+water_spatial:2@arrive=poisson(9ms)"
	csvAt := func(workers int) string {
		res, err := colab.NewExperiment(
			colab.WithWorkloads(spec),
			colab.WithMachine(colab.Config2B2S),
			colab.WithPolicies("linux", "colab"),
			colab.WithSeeds(3),
			colab.WithWorkers(workers),
		).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := res.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := csvAt(1)
	// The workload column carries the canonical spec, quoted because the
	// uniform window contains a comma.
	canon := "\"radix:2+fft:2@arrive=uniform(0ns,40ms)+water_spatial:2@arrive=poisson(9ms)\""
	if !strings.Contains(ref, canon+",2B2S,linux,3,") {
		t.Fatalf("csv misses the scenario cell:\n%s", ref)
	}
	for _, workers := range []int{4, 7} {
		if got := csvAt(workers); got != ref {
			t.Errorf("workers=%d differs:\n%s\nvs\n%s", workers, got, ref)
		}
	}
	if got := csvAt(1); got != ref {
		t.Errorf("re-run at same seed differs:\n%s\nvs\n%s", got, ref)
	}
}

// Arrival admissions surface in the public trace stream, in order.
func TestOpenScenarioTracedAdmissions(t *testing.T) {
	w, err := colab.BuildWorkload("swaptions:2+swaptions:2@arrive=25ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	var admits []colab.Time
	_, err = colab.RunTraced(colab.Config2B2S, colab.NewLinux(), w, func(e colab.TraceEvent) {
		if e.Kind == "admit" {
			admits = append(admits, e.At)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(admits) != 2 || admits[0] != 0 || admits[1] != 25*colab.Millisecond {
		t.Fatalf("admissions = %v, want [0, 25ms]", admits)
	}
}

// Unknown names must surface the registered inventories, and the grammar
// surface must reject malformed specs with a useful error.
func TestScenarioAPIErrors(t *testing.T) {
	_, err := colab.BuildWorkload("Nope-3", 1)
	if err == nil || !strings.Contains(err.Error(), "scenarios:") || !strings.Contains(err.Error(), "Sync-2") {
		t.Fatalf("BuildWorkload unknown error must list scenarios, got %v", err)
	}
	_, err = colab.BuildBenchmark("nope", 4, 1)
	if err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Fatalf("BuildBenchmark unknown error must list benchmarks, got %v", err)
	}
	if _, err := colab.ParseScenario("ferret:4@arrive=warp(9)"); err == nil {
		t.Fatal("bad arrival process must error")
	}
	if err := colab.RegisterScenario("bad name!", "ferret:2"); err == nil {
		t.Fatal("grammar-unsafe scenario name must error")
	}
	names := colab.ScenarioNames()
	if len(names) < 26 {
		t.Fatalf("scenario inventory too small: %d", len(names))
	}
	if len(colab.BenchmarkNames()) < 15 {
		t.Fatalf("benchmark inventory too small")
	}
}
